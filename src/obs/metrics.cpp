#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "io/json_reader.hpp"
#include "io/json_writer.hpp"

namespace dabs::obs {
namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (i > 0 && digit))) return false;
  }
  return true;
}

bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (i > 0 && digit))) return false;
  }
  return true;
}

// Label values: backslash, double-quote, and newline must be escaped in
// the exposition format.
void append_escaped_label_value(std::string& out, const std::string& value) {
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
}

std::string format_label_set(const MetricLabels& labels,
                             const std::string& extra_key = {},
                             const std::string& extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    append_escaped_label_value(out, v);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    append_escaped_label_value(out, extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

// Counters are integral in practice; print them without a fractional part
// so the exposition stays human-readable.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest representation that round-trips: "0.1" beats the %.17g form
  // "0.10000000000000001" for bucket bounds and latency sums.
  char buf[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string format_bound(double b) { return format_number(b); }

}  // namespace

const char* to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "counter";
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Portable atomic double accumulate (fetch_add on atomic<double> is
  // C++20 but not universally lock-free); contention here is negligible.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    const std::uint64_t prev = cum;
    cum += in_bucket;
    if (static_cast<double>(cum) < rank) continue;
    if (i == bounds_.size()) {
      // +Inf bucket: the best estimate is the largest finite bound.
      return bounds_.empty() ? 0.0 : bounds_.back();
    }
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double upper = bounds_[i];
    const double frac =
        (rank - static_cast<double>(prev)) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  std::vector<double> out;
  out.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

const std::vector<double>& Histogram::default_latency_bounds() {
  static const std::vector<double> kBounds = {
      0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
      0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0,
      30.0,   60.0};
  return kBounds;
}

MetricsRegistry::Family& MetricsRegistry::family_locked(
    const std::string& name, const std::string& help, MetricKind kind) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("metrics: invalid metric name: " + name);
  }
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.help = help;
    family.kind = kind;
  } else if (family.kind != kind) {
    throw std::logic_error("metrics: " + name + " registered as " +
                           to_string(family.kind) + ", requested as " +
                           to_string(kind));
  }
  return family;
}

MetricsRegistry::Sample& MetricsRegistry::sample_locked(
    Family& family, const MetricLabels& labels) {
  for (auto& sample : family.samples) {
    if (sample.labels == labels) return sample;
  }
  for (const auto& [k, v] : labels) {
    if (!valid_label_name(k)) {
      throw std::invalid_argument("metrics: invalid label name: " + k);
    }
  }
  return family.samples.emplace_back(Sample{labels, nullptr, nullptr, nullptr});
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = family_locked(name, help, MetricKind::kCounter);
  Sample& sample = sample_locked(family, labels);
  if (!sample.counter) sample.counter = std::make_unique<Counter>();
  return *sample.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = family_locked(name, help, MetricKind::kGauge);
  Sample& sample = sample_locked(family, labels);
  if (!sample.gauge) sample.gauge = std::make_unique<Gauge>();
  return *sample.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const std::vector<double>& bounds,
                                      const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = family_locked(name, help, MetricKind::kHistogram);
  if (family.samples.empty()) {
    family.bounds = bounds;
    std::sort(family.bounds.begin(), family.bounds.end());
    family.bounds.erase(
        std::unique(family.bounds.begin(), family.bounds.end()),
        family.bounds.end());
  } else if (family.bounds != bounds) {
    std::vector<double> sorted = bounds;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    if (family.bounds != sorted) {
      throw std::logic_error("metrics: " + name +
                             " registered with different bucket bounds");
    }
  }
  Sample& sample = sample_locked(family, labels);
  if (!sample.histogram) {
    sample.histogram = std::make_unique<Histogram>(family.bounds);
  }
  return *sample.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilySnapshot fs;
    fs.name = name;
    fs.help = family.help;
    fs.kind = family.kind;
    fs.samples.reserve(family.samples.size());
    for (const auto& sample : family.samples) {
      SampleSnapshot ss;
      ss.labels = sample.labels;
      switch (family.kind) {
        case MetricKind::kCounter:
          ss.value = static_cast<double>(sample.counter->value());
          break;
        case MetricKind::kGauge:
          ss.value = static_cast<double>(sample.gauge->value());
          break;
        case MetricKind::kHistogram:
          ss.bounds = sample.histogram->bounds();
          ss.buckets = sample.histogram->bucket_counts();
          ss.count = sample.histogram->count();
          ss.sum = sample.histogram->sum();
          break;
      }
      fs.samples.push_back(std::move(ss));
    }
    out.push_back(std::move(fs));
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void render_prometheus(const MetricsSnapshot& snapshot, std::ostream& out) {
  for (const auto& family : snapshot) {
    out << "# HELP " << family.name << ' ' << family.help << '\n';
    out << "# TYPE " << family.name << ' ' << to_string(family.kind) << '\n';
    for (const auto& sample : family.samples) {
      if (family.kind != MetricKind::kHistogram) {
        out << family.name << format_label_set(sample.labels) << ' '
            << format_number(sample.value) << '\n';
        continue;
      }
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < sample.bounds.size(); ++i) {
        cum += i < sample.buckets.size() ? sample.buckets[i] : 0;
        out << family.name << "_bucket"
            << format_label_set(sample.labels, "le",
                                format_bound(sample.bounds[i]))
            << ' ' << cum << '\n';
      }
      out << family.name << "_bucket"
          << format_label_set(sample.labels, "le", "+Inf") << ' '
          << sample.count << '\n';
      out << family.name << "_sum" << format_label_set(sample.labels) << ' '
          << format_number(sample.sum) << '\n';
      out << family.name << "_count" << format_label_set(sample.labels) << ' '
          << sample.count << '\n';
    }
  }
}

void write_snapshot_json(const MetricsSnapshot& snapshot, std::ostream& out) {
  io::JsonWriter w(out);
  w.begin_object();
  w.begin_array("families");
  for (const auto& family : snapshot) {
    w.begin_object();
    w.value("name", family.name);
    w.value("help", family.help);
    w.value("kind", to_string(family.kind));
    w.begin_array("samples");
    for (const auto& sample : family.samples) {
      w.begin_object();
      w.begin_object("labels");
      for (const auto& [k, v] : sample.labels) w.value(k, v);
      w.end_object();
      if (family.kind == MetricKind::kHistogram) {
        w.begin_array("bounds");
        for (double b : sample.bounds) w.element(b);
        w.end_array();
        w.begin_array("buckets");
        for (std::uint64_t c : sample.buckets) w.element(c);
        w.end_array();
        w.value("count", sample.count);
        w.value("sum", sample.sum);
      } else {
        w.value("value", sample.value);
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

namespace {

MetricKind kind_from_string(const std::string& s) {
  if (s == "counter") return MetricKind::kCounter;
  if (s == "gauge") return MetricKind::kGauge;
  if (s == "histogram") return MetricKind::kHistogram;
  throw std::invalid_argument("metrics: unknown kind in snapshot: " + s);
}

}  // namespace

MetricsSnapshot parse_snapshot_json(const std::string& text) {
  const io::JsonValue root = io::parse_json(text);
  const io::JsonValue* families = root.find("families");
  if (families == nullptr || !families->is_array()) {
    throw std::invalid_argument("metrics: snapshot missing families array");
  }
  MetricsSnapshot out;
  for (const auto& fam : families->as_array()) {
    FamilySnapshot fs;
    const io::JsonValue* name = fam.find("name");
    const io::JsonValue* kind = fam.find("kind");
    if (name == nullptr || kind == nullptr) {
      throw std::invalid_argument("metrics: snapshot family missing name/kind");
    }
    fs.name = name->as_string();
    fs.kind = kind_from_string(kind->as_string());
    if (const io::JsonValue* help = fam.find("help")) {
      fs.help = help->as_string();
    }
    if (const io::JsonValue* samples = fam.find("samples")) {
      for (const auto& s : samples->as_array()) {
        SampleSnapshot ss;
        if (const io::JsonValue* labels = s.find("labels")) {
          for (const auto& [k, v] : labels->as_object()) {
            ss.labels.emplace_back(k, v.as_string());
          }
        }
        if (fs.kind == MetricKind::kHistogram) {
          if (const io::JsonValue* bounds = s.find("bounds")) {
            for (const auto& b : bounds->as_array()) {
              ss.bounds.push_back(b.as_double());
            }
          }
          if (const io::JsonValue* buckets = s.find("buckets")) {
            for (const auto& b : buckets->as_array()) {
              ss.buckets.push_back(static_cast<std::uint64_t>(b.as_double()));
            }
          }
          if (const io::JsonValue* count = s.find("count")) {
            ss.count = static_cast<std::uint64_t>(count->as_double());
          }
          if (const io::JsonValue* sum = s.find("sum")) {
            ss.sum = sum->as_double();
          }
        } else if (const io::JsonValue* value = s.find("value")) {
          ss.value = value->as_double();
        }
        fs.samples.push_back(std::move(ss));
      }
    }
    out.push_back(std::move(fs));
  }
  return out;
}

void add_label(MetricsSnapshot& snapshot, const std::string& key,
               const std::string& value) {
  for (auto& family : snapshot) {
    for (auto& sample : family.samples) {
      bool present = false;
      for (const auto& [k, v] : sample.labels) {
        if (k == key) {
          present = true;
          break;
        }
      }
      if (!present) sample.labels.emplace_back(key, value);
    }
  }
}

MetricsSnapshot merge_snapshots(std::vector<MetricsSnapshot> parts) {
  MetricsSnapshot out;
  for (auto& part : parts) {
    for (auto& family : part) {
      FamilySnapshot* target = nullptr;
      for (auto& existing : out) {
        if (existing.name == family.name) {
          target = &existing;
          break;
        }
      }
      if (target == nullptr) {
        out.push_back(std::move(family));
        continue;
      }
      if (target->kind != family.kind) continue;  // defensive: drop mismatches
      for (auto& sample : family.samples) {
        target->samples.push_back(std::move(sample));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FamilySnapshot& a, const FamilySnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace dabs::obs
