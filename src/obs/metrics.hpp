// Lock-cheap process-wide metrics: named counters, gauges, and fixed-bucket
// histograms, registered once (under a mutex) and updated with relaxed
// atomics from any thread — cheap enough for the service hot paths, though
// never placed inside the flip kernels themselves (solver throughput is
// sampled at the ProgressObserver boundary instead).
//
//   auto& m = obs::MetricsRegistry::global();
//   obs::Counter& reqs = m.counter("dabs_http_requests_total",
//                                  "Requests served.", {{"class", "2xx"}});
//   reqs.inc();
//
// The registry renders Prometheus text exposition format (render_prometheus)
// and a JSON snapshot form (write_snapshot_json / parse_snapshot_json) that
// the shard RPC uses to aggregate forked workers' registries into one
// /v1/metrics scrape with per-shard labels (add_label + merge_snapshots).
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime: fetch them once (a static struct per call site is
// the idiom used across the codebase) and record through the pointer.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dabs::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };
const char* to_string(MetricKind kind) noexcept;

/// Label set of one sample, in registration order.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter.  inc() is a relaxed fetch_add — no fences, no locks.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed value (queue depths, resident bytes).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram with Prometheus semantics: `bounds` are the
/// finite upper bounds (le), ascending; observations land in the first
/// bucket whose bound is >= the value, with an implicit +Inf bucket.
/// observe() is a few relaxed atomic adds; quantile() interpolates within
/// the winning bucket the way PromQL's histogram_quantile does.
class Histogram {
 public:
  /// `bounds` is sorted and deduplicated; it may be empty (everything
  /// lands in +Inf and quantiles degrade to 0).
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  /// q in [0, 1]; linear interpolation inside the winning bucket, the
  /// lowest bound for q=0-ish, the highest finite bound when the winning
  /// bucket is +Inf.  0 when nothing was observed.
  double quantile(double q) const;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size bounds().size() + 1, the
  /// last entry being the +Inf bucket.
  std::vector<std::uint64_t> bucket_counts() const;

  /// `count` bounds starting at `start`, each `factor` times the last —
  /// the standard latency-bucket generator.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);
  /// 100us .. 60s, the default for request/job latencies.
  static const std::vector<double>& default_latency_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One sample in a snapshot: the label set plus either a scalar value
/// (counter/gauge) or the histogram state.
struct SampleSnapshot {
  MetricLabels labels;
  double value = 0.0;          // counter / gauge
  std::vector<double> bounds;  // histogram only
  std::vector<std::uint64_t> buckets;  // per-bucket, +Inf last
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// One metric family: every sample shares the name, help, and kind.
struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<SampleSnapshot> samples;
};

using MetricsSnapshot = std::vector<FamilySnapshot>;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create.  The same (name, labels) always returns the same
  /// instance; a name reused with a different kind (or a histogram with
  /// different bounds) throws std::logic_error; a name or label key that
  /// is not a valid Prometheus identifier throws std::invalid_argument.
  Counter& counter(const std::string& name, const std::string& help,
                   const MetricLabels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const MetricLabels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       const std::vector<double>& bounds,
                       const MetricLabels& labels = {});

  /// Point-in-time copy of every family, sorted by name.
  MetricsSnapshot snapshot() const;

  /// The process-wide registry every instrumented layer records into.
  static MetricsRegistry& global();

 private:
  struct Sample {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::vector<double> bounds;  // histogram families: fixed per family
    std::vector<Sample> samples;
  };

  Family& family_locked(const std::string& name, const std::string& help,
                        MetricKind kind);
  Sample& sample_locked(Family& family, const MetricLabels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

/// Prometheus text exposition format (# HELP / # TYPE + samples; histogram
/// families expand to _bucket{le=...}/_sum/_count).
void render_prometheus(const MetricsSnapshot& snapshot, std::ostream& out);

/// JSON form for cross-process aggregation (the shard "metrics" RPC).
void write_snapshot_json(const MetricsSnapshot& snapshot, std::ostream& out);
/// Inverse of write_snapshot_json; throws std::invalid_argument on
/// malformed input.
MetricsSnapshot parse_snapshot_json(const std::string& text);

/// Appends `key`="value" to every sample (used to tag a worker snapshot
/// with its shard index before merging).  Existing keys are left alone.
void add_label(MetricsSnapshot& snapshot, const std::string& key,
               const std::string& value);

/// Merges by family name: samples concatenate; the first snapshot's
/// help/kind win; a family whose kind disagrees across snapshots keeps the
/// first and drops the mismatched samples (defensive — cannot happen when
/// every process runs the same binary).
MetricsSnapshot merge_snapshots(std::vector<MetricsSnapshot> parts);

}  // namespace dabs::obs
