#include "obs/build_info.hpp"

#include "dabs_version.hpp"

namespace dabs::obs {

const BuildInfo& build_info() {
  static const BuildInfo info{
      DABS_VERSION_STRING, DABS_GIT_DESCRIBE, DABS_CXX_COMPILER,
      DABS_BUILD_TYPE,     DABS_CXX_FLAGS,
  };
  return info;
}

}  // namespace dabs::obs
