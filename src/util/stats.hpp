// Streaming summary statistics (Welford) used by the benchmark harness for
// TTS averages and by RunStats for per-run aggregates.
#pragma once

#include <cstddef>
#include <limits>
#include <string>

namespace dabs {

class SummaryStats {
 public:
  void add(double x);

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// "mean=... std=... min=... max=... n=..." one-liner.
  std::string to_string() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace dabs
