// Wall-clock stopwatch used for TTS (time-to-solution) measurement and
// time-limited solver runs.
#pragma once

#include <chrono>

namespace dabs {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dabs
