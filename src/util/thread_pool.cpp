#include "util/thread_pool.hpp"

#include <algorithm>

namespace dabs {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::submit_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    std::lock_guard lock(mu_);
    for (auto& task : tasks) tasks_.push_back(std::move(task));
  }
  cv_task_.notify_all();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard lock(mu_);
  return tasks_.size();
}

std::size_t ThreadPool::active_count() const {
  std::lock_guard lock(mu_);
  return active_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace dabs
