// Lightweight assertion / check macros for the dabs library.
//
// DABS_ASSERT  - debug-only invariant check on hot paths (compiled out in
//                release builds unless DABS_FORCE_ASSERTS is defined).
// DABS_CHECK   - always-on precondition check on public API boundaries;
//                throws std::invalid_argument with a readable message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dabs::detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "DABS_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

}  // namespace dabs::detail

#define DABS_CHECK(expr, msg)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::dabs::detail::throw_check_failure(#expr, __FILE__, __LINE__, msg); \
    }                                                                      \
  } while (0)

#if !defined(NDEBUG) || defined(DABS_FORCE_ASSERTS)
#define DABS_ASSERT(expr) DABS_CHECK(expr, "internal invariant")
#else
#define DABS_ASSERT(expr) ((void)0)
#endif
