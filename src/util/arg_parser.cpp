#include "util/arg_parser.hpp"

#include <cstdlib>

#include "util/assert.hpp"

namespace dabs {

ArgParser::ArgParser(int argc, const char* const* argv) {
  DABS_CHECK(argc >= 1, "argv must contain the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token isn't an option; else boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "true";
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  queried_[name] = true;
  return options_.count(name) != 0;
}

std::optional<std::string> ArgParser::get(const std::string& name) const {
  queried_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get(const std::string& name,
                           const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  DABS_CHECK(end && *end == '\0' && !v->empty(),
             "option --" + name + " expects an integer, got '" + *v + "'");
  return parsed;
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  DABS_CHECK(end && *end == '\0' && !v->empty(),
             "option --" + name + " expects a number, got '" + *v + "'");
  return parsed;
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  DABS_CHECK(false, "option --" + name + " expects a boolean, got '" + *v +
                        "'");
  return fallback;
}

std::vector<std::string> ArgParser::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : options_) {
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace dabs
