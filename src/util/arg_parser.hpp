// Minimal command-line argument parser for the example/tool binaries.
//
// Supports "--name value", "--name=value", boolean "--flag", and free
// positional arguments.  Typed accessors validate and convert, throwing
// std::invalid_argument with a readable message on bad input — the tools
// catch it and print usage.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dabs {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// Program name (argv[0]).
  const std::string& program() const noexcept { return program_; }

  bool has(const std::string& name) const;

  /// String option; `fallback` when absent.
  std::string get(const std::string& name, const std::string& fallback) const;
  std::optional<std::string> get(const std::string& name) const;

  /// Typed accessors.
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Names that were provided but never queried — typo detection.
  /// Call after all get()s; returns the unknown names.
  std::vector<std::string> unused() const;

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace dabs
