#include "util/bit_vector.hpp"

#include <bit>

#include "util/assert.hpp"

namespace dabs {

BitVector::BitVector(std::size_t n) : n_(n), words_((n + 63) / 64, 0) {}

BitVector BitVector::from_string(const std::string& s) {
  BitVector v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    DABS_CHECK(s[i] == '0' || s[i] == '1', "bit string must be 0/1");
    v.set(i, s[i] == '1');
  }
  return v;
}

void BitVector::clear() noexcept {
  for (auto& w : words_) w = 0;
}

void BitVector::fill(bool v) noexcept {
  const std::uint64_t pattern = v ? ~std::uint64_t{0} : 0;
  for (auto& w : words_) w = pattern;
  mask_tail();
}

void BitVector::mask_tail() noexcept {
  const std::size_t rem = n_ & 63;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << rem) - 1;
  }
}

std::size_t BitVector::count() const noexcept {
  std::size_t c = 0;
  for (auto w : words_) c += std::popcount(w);
  return c;
}

std::size_t BitVector::hamming_distance(const BitVector& other) const {
  DABS_CHECK(n_ == other.n_, "hamming_distance requires equal lengths");
  std::size_t d = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    d += std::popcount(words_[w] ^ other.words_[w]);
  }
  return d;
}

std::size_t BitVector::first_difference(const BitVector& other) const {
  DABS_CHECK(n_ == other.n_, "first_difference requires equal lengths");
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const std::uint64_t x = words_[w] ^ other.words_[w];
    if (x != 0) return w * 64 + std::countr_zero(x);
  }
  return n_;
}

std::string BitVector::to_string() const {
  std::string s(n_, '0');
  for (std::size_t i = 0; i < n_; ++i) {
    if (get(i)) s[i] = '1';
  }
  return s;
}

std::uint64_t BitVector::hash() const noexcept {
  // FNV-1a over the packed words; cheap and adequate for pool dedup.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (auto w : words_) {
    h ^= w;
    h *= 0x100000001b3ull;
  }
  h ^= n_;
  h *= 0x100000001b3ull;
  return h;
}

}  // namespace dabs
