// Fixed-width histogram matching the paper's presentation: bins labelled
// b1, b2, ... where bin i covers the half-open range [b_i, b_{i+1}).
// Used to regenerate Figs. 5-7 (TTS and solution-quality histograms).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dabs {

class Histogram {
 public:
  /// Bins [lo, lo+width), [lo+width, lo+2*width), ... covering [lo, hi).
  /// Samples below lo or at/above hi are counted in underflow/overflow.
  Histogram(double lo, double hi, double width);

  void add(double sample);

  std::size_t bin_count() const noexcept { return counts_.size(); }
  /// Left edge of bin i (the paper's bin label b_{i+1}).
  double bin_lo(std::size_t i) const { return lo_ + width_ * double(i); }
  std::size_t count(std::size_t i) const { return counts_[i]; }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t total() const noexcept { return total_; }

  /// Renders one "label count" row per bin, e.g. for bench output.
  std::string to_table(int label_precision = 1) const;

 private:
  double lo_, width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace dabs
