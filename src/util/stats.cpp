#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dabs {

void SummaryStats::add(double x) {
  ++n_;
  const double d = x - mean_;
  mean_ += d / double(n_);
  m2_ += d * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double SummaryStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / double(n_ - 1) : 0.0;
}

double SummaryStats::stddev() const noexcept { return std::sqrt(variance()); }

std::string SummaryStats::to_string() const {
  std::ostringstream os;
  os << "mean=" << mean() << " std=" << stddev() << " min=" << (n_ ? min_ : 0)
     << " max=" << (n_ ? max_ : 0) << " n=" << n_;
  return os.str();
}

}  // namespace dabs
