// Minimal fixed-size thread pool.  Used by the benchmark harness to run
// independent solver trials concurrently; the device substrate manages its
// own threads (see device/virtual_device.hpp) because its workers are
// long-lived consumers of a packet queue rather than one-shot tasks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dabs {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks may run in any order across workers.
  void submit(std::function<void()> task);

  /// Enqueues a whole batch under a single lock acquisition with one
  /// notify_all — per-task lock/wakeup overhead matters when a campaign
  /// submits hundreds of short trials at once.  The vector is consumed.
  void submit_batch(std::vector<std::function<void()>> tasks);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Tasks submitted but not yet picked up by a worker.  Instantaneous
  /// snapshots for metrics/backpressure: another thread may change them
  /// right after the lock drops.
  std::size_t queue_depth() const;
  /// Tasks currently executing on a worker.
  std::size_t active_count() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> tasks_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dabs
