// Fault-injection harness: named failpoints compiled in behind the
// DABS_FAILPOINTS build option (ON by default; an inactive point costs one
// relaxed atomic load).  Production code threads `fail::point("name")`
// hooks through its failure-prone seams — model load, journal append,
// worker execution, queue push — and tests (or an operator, via the
// DABS_FAILPOINTS environment variable) arm them to drive every
// error-handling path deterministically instead of hoping a real fault
// shows up.
//
// Activation spec grammar (one per point):
//
//   mode[:arg][,kind]
//
//   modes:  always        fire on every hit
//           nth:N         fire on exactly the Nth hit (1-based)
//           first:N       fire on hits 1..N, then pass (retry-succeeds
//                         scenarios: "first:2" fails twice, then works)
//           prob:P[:seed] fire with probability P per hit (seeded xorshift,
//                         deterministic for a fixed seed)
//           off           never fire (still counts hits)
//
//   kinds:  fault         throw InjectedFault (default; non-retryable)
//           retryable     throw InjectedFault whose message carries the
//                         "retryable:" prefix the service retry policy
//                         recognizes
//           oom           throw std::bad_alloc (the real retryable class
//                         the paper-scale batches hit)
//
// Environment activation: DABS_FAILPOINTS="name=spec;name2=spec2", read
// once on the first point() evaluation (or explicitly via
// load_from_env()).  Programmatic activation: configure(name, spec).
//
// When built with -DDABS_FAILPOINTS=OFF every function below is an inline
// no-op and compiled_in() is false; failpoint-driven tests skip themselves.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dabs::fail {

/// What an armed failpoint throws (kinds fault/retryable).  Derives from
/// std::runtime_error so un-instrumented catch blocks treat an injected
/// fault exactly like a real one.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Message prefix that marks an error as retryable to the service retry
/// policy (see SolverService); shared so tests and solvers agree on it.
inline constexpr const char* kRetryablePrefix = "retryable:";

#if defined(DABS_FAILPOINTS_ENABLED)

/// True when the harness is compiled in.
constexpr bool compiled_in() noexcept { return true; }

/// Evaluates the named failpoint: counts the hit and throws per the armed
/// spec.  No-op (one relaxed atomic load) while nothing is armed.
void point(const char* name);

/// Arms `name` with `spec` (grammar above); "off" disarms while keeping
/// the hit counter.  Throws std::invalid_argument on a malformed spec.
void configure(const std::string& name, const std::string& spec);

/// Disarms every point and zeroes all hit counters.
void clear();

/// Hits recorded for `name` (armed or not); 0 for an unknown point.
std::uint64_t hits(const std::string& name);

/// (Re-)reads the DABS_FAILPOINTS environment variable, replacing the
/// current armed set.  Also runs implicitly before the first point().
void load_from_env();

#else  // !DABS_FAILPOINTS_ENABLED

constexpr bool compiled_in() noexcept { return false; }
inline void point(const char*) {}
inline void configure(const std::string&, const std::string&) {}
inline void clear() {}
inline std::uint64_t hits(const std::string&) { return 0; }
inline void load_from_env() {}

#endif  // DABS_FAILPOINTS_ENABLED

/// True when `what` (an exception message) carries the retryable marker.
inline bool is_retryable_message(const std::string& what) {
  return what.rfind(kRetryablePrefix, 0) == 0;
}

}  // namespace dabs::fail
