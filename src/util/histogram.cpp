#include "util/histogram.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace dabs {

Histogram::Histogram(double lo, double hi, double width)
    : lo_(lo), width_(width) {
  DABS_CHECK(width > 0, "bin width must be positive");
  DABS_CHECK(hi > lo, "histogram range must be non-empty");
  const auto nbins = static_cast<std::size_t>(std::ceil((hi - lo) / width));
  counts_.assign(nbins, 0);
}

void Histogram::add(double sample) {
  ++total_;
  if (sample < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((sample - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

std::string Histogram::to_table(int label_precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(label_precision);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << std::setw(12) << bin_lo(i) << "  " << counts_[i] << '\n';
  }
  if (underflow_ != 0) os << "  underflow  " << underflow_ << '\n';
  if (overflow_ != 0) os << "  overflow   " << overflow_ << '\n';
  return os.str();
}

}  // namespace dabs
