#include "util/failpoint.hpp"

#if defined(DABS_FAILPOINTS_ENABLED)

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>

#include "rng/xorshift.hpp"

namespace dabs::fail {

namespace {

struct Point {
  enum class Mode : std::uint8_t { kOff, kAlways, kNth, kFirst, kProb };
  enum class Kind : std::uint8_t { kFault, kRetryable, kOom };

  Mode mode = Mode::kOff;
  Kind kind = Kind::kFault;
  std::uint64_t arg = 0;   // N for nth/first
  double prob = 0.0;       // P for prob
  Rng rng{0xfa11u};        // prob draws; reseeded at configure time
  std::uint64_t hits = 0;  // counted even when the mode never fires
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Point> points;
  // Fast-path gate: number of configured points (armed or "off" — an off
  // point still counts hits).  point() bails on zero without taking the
  // lock, so an un-configured build pays one relaxed atomic load per hook.
  std::atomic<int> armed{0};
};

Registry& registry() {
  static Registry r;  // leaked-on-exit singleton: hooks may run very late
  return r;
}

int armed_count_locked(const Registry& r) {
  return static_cast<int>(r.points.size());
}

Point parse_spec(const std::string& name, const std::string& spec) {
  Point p;
  const std::size_t comma = spec.find(',');
  const std::string mode = spec.substr(0, comma);
  const std::string kind =
      comma == std::string::npos ? "fault" : spec.substr(comma + 1);

  const auto bad = [&name, &spec](const char* why) -> std::invalid_argument {
    return std::invalid_argument("failpoint '" + name + "': bad spec '" +
                                 spec + "' (" + why + ")");
  };
  const auto parse_u64 = [&bad](const std::string& s) -> std::uint64_t {
    try {
      std::size_t end = 0;
      const unsigned long long v = std::stoull(s, &end);
      if (end != s.size()) throw bad("trailing characters in number");
      return v;
    } catch (const std::invalid_argument&) {
      throw bad("expected a number");
    } catch (const std::out_of_range&) {
      throw bad("number out of range");
    }
  };

  if (mode == "off") {
    p.mode = Point::Mode::kOff;
  } else if (mode == "always") {
    p.mode = Point::Mode::kAlways;
  } else if (mode.rfind("nth:", 0) == 0 || mode.rfind("first:", 0) == 0) {
    p.mode = mode[0] == 'n' ? Point::Mode::kNth : Point::Mode::kFirst;
    p.arg = parse_u64(mode.substr(mode.find(':') + 1));
    if (p.arg == 0) throw bad("N must be >= 1");
  } else if (mode.rfind("prob:", 0) == 0) {
    p.mode = Point::Mode::kProb;
    std::string rest = mode.substr(5);
    const std::size_t colon = rest.find(':');
    std::uint64_t seed = 0xfa11bacc;
    if (colon != std::string::npos) {
      seed = parse_u64(rest.substr(colon + 1));
      rest = rest.substr(0, colon);
    }
    try {
      std::size_t end = 0;
      p.prob = std::stod(rest, &end);
      if (end != rest.size()) throw bad("trailing characters in probability");
    } catch (const std::invalid_argument&) {
      throw bad("expected a probability");
    } catch (const std::out_of_range&) {
      throw bad("probability out of range");
    }
    if (p.prob < 0.0 || p.prob > 1.0) throw bad("probability not in [0, 1]");
    p.rng.reseed(seed);
  } else {
    throw bad("unknown mode");
  }

  if (kind == "fault") {
    p.kind = Point::Kind::kFault;
  } else if (kind == "retryable") {
    p.kind = Point::Kind::kRetryable;
  } else if (kind == "oom") {
    p.kind = Point::Kind::kOom;
  } else {
    throw bad("unknown kind");
  }
  return p;
}

void load_env_locked(Registry& r) {
  // "name=spec;name=spec": malformed entries are ignored (an operator typo
  // in the environment must not take the process down before main()).
  const char* env = std::getenv("DABS_FAILPOINTS");
  if (env == nullptr) return;
  const std::string all(env);
  std::size_t start = 0;
  while (start < all.size()) {
    std::size_t end = all.find(';', start);
    if (end == std::string::npos) end = all.size();
    const std::string entry = all.substr(start, end - start);
    start = end + 1;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    try {
      Point p = parse_spec(entry.substr(0, eq), entry.substr(eq + 1));
      p.hits = r.points[entry.substr(0, eq)].hits;
      r.points[entry.substr(0, eq)] = p;
    } catch (const std::invalid_argument&) {
      // skip the malformed entry
    }
  }
}

std::once_flag env_once;

void ensure_env_loaded() {
  std::call_once(env_once, [] {
    Registry& r = registry();
    std::lock_guard lock(r.mu);
    load_env_locked(r);
    r.armed.store(armed_count_locked(r), std::memory_order_relaxed);
  });
}

}  // namespace

void point(const char* name) {
  ensure_env_loaded();
  Registry& r = registry();
  if (r.armed.load(std::memory_order_relaxed) == 0) return;

  Point::Kind kind = Point::Kind::kFault;
  bool fire = false;
  {
    std::lock_guard lock(r.mu);
    const auto it = r.points.find(name);
    if (it == r.points.end()) return;
    Point& p = it->second;
    ++p.hits;
    switch (p.mode) {
      case Point::Mode::kOff:
        break;
      case Point::Mode::kAlways:
        fire = true;
        break;
      case Point::Mode::kNth:
        fire = p.hits == p.arg;
        break;
      case Point::Mode::kFirst:
        fire = p.hits <= p.arg;
        break;
      case Point::Mode::kProb:
        fire = p.rng.next_unit() < p.prob;
        break;
    }
    kind = p.kind;
  }
  if (!fire) return;
  switch (kind) {
    case Point::Kind::kOom:
      throw std::bad_alloc();
    case Point::Kind::kRetryable:
      throw InjectedFault(std::string(kRetryablePrefix) +
                          " injected fault at " + name);
    case Point::Kind::kFault:
      break;
  }
  throw InjectedFault(std::string("injected fault at ") + name);
}

void configure(const std::string& name, const std::string& spec) {
  ensure_env_loaded();
  Point p = parse_spec(name, spec);
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  p.hits = r.points[name].hits;  // configure() re-arms, it does not reset
  r.points[name] = p;
  r.armed.store(armed_count_locked(r), std::memory_order_relaxed);
}

void clear() {
  ensure_env_loaded();
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  r.points.clear();
  r.armed.store(0, std::memory_order_relaxed);
}

std::uint64_t hits(const std::string& name) {
  ensure_env_loaded();
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  const auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.hits;
}

void load_from_env() {
  ensure_env_loaded();  // keeps the once-flag consistent
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  load_env_locked(r);
  r.armed.store(armed_count_locked(r), std::memory_order_relaxed);
}

}  // namespace dabs::fail

#endif  // DABS_FAILPOINTS_ENABLED
