// Packed bit vector used for QUBO solution vectors X = x0 x1 ... x{n-1}.
//
// Solution vectors are flipped millions of times per second by the search
// kernels, so the representation is a flat array of 64-bit words with
// branch-free get/set/flip and hardware popcount for Hamming distances.
#pragma once

#include <cstdint>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace dabs {

class BitVector {
 public:
  BitVector() = default;

  /// Constructs an all-zero vector of `n` bits.
  explicit BitVector(std::size_t n);

  /// Constructs from a string of '0'/'1' characters (bit i = s[i]).
  static BitVector from_string(const std::string& s);

  /// Number of bits.
  std::size_t size() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }

  /// Value of bit i (no bounds check in release builds).
  bool get(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  bool operator[](std::size_t i) const noexcept { return get(i); }

  /// Sets bit i to `v`.
  void set(std::size_t i, bool v) noexcept {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  /// Flips bit i and returns its new value.
  bool flip(std::size_t i) noexcept {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    words_[i >> 6] ^= mask;
    return words_[i >> 6] & mask;
  }

  /// Sets every bit to zero / one.
  void clear() noexcept;
  void fill(bool v) noexcept;

  /// Number of one bits.
  std::size_t count() const noexcept;

  /// Hamming distance to another vector of the same length.
  std::size_t hamming_distance(const BitVector& other) const;

  /// Index of the first bit that differs from `other`, or size() if equal.
  std::size_t first_difference(const BitVector& other) const;

  /// Readable "010110..." form (bit 0 first).
  std::string to_string() const;

  /// Raw word access (word w holds bits [64w, 64w+63], LSB-first).
  const std::uint64_t* words() const noexcept { return words_.data(); }
  std::uint64_t* words() noexcept { return words_.data(); }
  std::size_t word_count() const noexcept { return words_.size(); }

  /// Stable 64-bit content hash (for dedup in solution pools).
  std::uint64_t hash() const noexcept;

  friend bool operator==(const BitVector& a, const BitVector& b) noexcept {
    return a.n_ == b.n_ && a.words_ == b.words_;
  }
  friend bool operator!=(const BitVector& a, const BitVector& b) noexcept {
    return !(a == b);
  }

 private:
  /// Zeroes the unused high bits of the last word so == and count() are exact.
  void mask_tail() noexcept;

  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace dabs

template <>
struct std::hash<dabs::BitVector> {
  std::size_t operator()(const dabs::BitVector& v) const noexcept {
    return static_cast<std::size_t>(v.hash());
  }
};
