// JSONL batch front end over SolverService: read one job object per line,
// run them concurrently, stream one report object per line as jobs finish
// (out of order — each output line carries its job id and input line).
//
// Input line schema (exactly one of "model" / "problem" is required):
//
//   {"model": "k2000.txt",        // problem file, parsed once per path
//    "format": "qubo",            // qubo | gset | qaplib (with "model")
//    "problem": "tsp",            // OR: any ProblemRegistry spec, e.g.
//                                 //     "qap", "g39", "gset:G22.txt"
//    "params": {"n": 8},          // problem params (with "problem")
//    "solver": "tabu",            // any registry name (default dabs)
//    "options": {"tenure": 8},    // solver options (string/number/bool)
//    "time_limit": 2.5,           // StopCondition seconds
//    "max_batches": 1000,         // StopCondition work budget
//    "target": -33337,            // StopCondition target energy
//    "deadline": 10,              // wall-clock deadline from submit (sec);
//                                 // the watchdog cancels overruns
//    "attempts": 3,               // solve() attempts for retryable errors
//                                 // (default: BatchOptions::max_attempts)
//    "seed": 7, "priority": 2, "tag": "hot", "tick": 0.5}
//
// Blank lines and lines starting with '#' are skipped.  Every model flows
// through the service's ModelCache — legacy file jobs keyed by
// "<format>#<path>", problem jobs by "problem#<canonical key>" — so
// repeated specs skip the encode and equal-content instances share
// storage; each report's extras record the outcome ("model_cache":
// hit|miss, "model_cache_hits": running total).  Problem-keyed jobs are
// additionally decoded and verified when they finish: their report extras
// carry "objective", "objective_name", "feasible", and "verified" (the
// energy is independently re-evaluated against the cached model, not
// trusted from the solver).
//
// Fault tolerance (see job_journal.hpp for the journal wire format):
//
//   - BatchOptions::journal_path arms the write-ahead journal: every job
//     gets a fsync'd `submitted` record before it is enqueued and a
//     terminal record when its report is emitted, keyed by the stable
//     job_fingerprint() below (also echoed into each report's extras as
//     "fingerprint").  With `resume`, the journal is replayed first and
//     jobs whose fingerprint already reached done/failed are skipped —
//     kill -9 mid-batch, re-run with --resume, and the union of streamed
//     reports is exactly the job set.
//   - Retryable failures (unreadable model files at load; std::bad_alloc
//     or fail::kRetryablePrefix errors inside solve) retry up to
//     max_attempts times with bounded exponential backoff + jitter.
//   - max_queue_depth sheds over-capacity submits as status "rejected"
//     (journaled, and re-enqueued by a later --resume run).
//   - `interrupt` (wired to SIGINT/SIGTERM by the CLI) stops intake,
//     cancels outstanding jobs, flushes the journal and the reports
//     already earned, prints the summary, and returns 130.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "problems/problem_registry.hpp"
#include "service/model_cache.hpp"
#include "service/solver_service.hpp"

namespace dabs::service {

struct BatchOptions {
  /// Worker threads (the CLI's --jobs knob).
  std::size_t threads = 4;
  std::size_t cache_bytes = ModelCache::kDefaultMaxBytes;
  /// Applied when a job line sets neither time_limit nor max_batches, so
  /// every job is bounded (a target alone is not a bound — it may never
  /// be reached; mirrors the single-run CLI default).
  double default_time_limit = 5.0;
  /// Per-job event-log bound.
  std::size_t max_events_per_job = 64;

  /// Write-ahead journal path (empty = no journal).
  std::string journal_path;
  /// Replay the journal before reading jobs and skip fingerprints whose
  /// last record is terminal (done/failed).  Requires journal_path.
  bool resume = false;
  /// Default solve()/load attempts for retryable failures (>= 1); a job
  /// line's "attempts" overrides it for that job.
  std::uint32_t max_attempts = 3;
  /// Retry backoff shape (see retry_backoff() in solver_service.hpp).
  double retry_backoff_seconds = 0.05;
  double retry_backoff_max_seconds = 2.0;
  /// Admission bound forwarded to SolverService (0 = unbounded).
  std::size_t max_queue_depth = 0;
  /// Optional cooperative-interrupt flag: when it flips true (e.g. from a
  /// SIGINT handler), the runner stops intake, cancels outstanding jobs,
  /// flushes journal + earned reports, and returns 130.
  const std::atomic<bool>* interrupt = nullptr;
  /// When non-empty, every finished job's lifecycle (queued / run spans,
  /// progress instants) is dumped as Chrome trace-event JSON here when the
  /// batch drains — load it at chrome://tracing (`dabs_cli batch --trace`).
  std::string trace_path;
};

/// One parsed job line, model not yet loaded.  Exactly one of
/// `model_path` (+ `format`) and `problem` (+ `params`) is set.
struct BatchJob {
  std::string model_path;
  std::string format = "qubo";
  /// ProblemRegistry spec ("qap", "gset:G22.txt", ...); empty for legacy
  /// file jobs.
  std::string problem;
  /// Problem params (the "params" object), forwarded to the registry.
  SolverOptions params;
  /// True when the line set "attempts" itself (otherwise the batch-wide
  /// BatchOptions::max_attempts applies).
  bool explicit_attempts = false;
  JobSpec spec;  // spec.model stays null until the runner loads it
};

/// Parses one JSONL job line; throws std::invalid_argument with a readable
/// message on schema violations.
BatchJob parse_batch_job(const std::string& json_line);

/// Stable fingerprint of a job definition: 16 hex chars of FNV-1a over
/// every field that identifies the job (model/problem spec + params +
/// solver + options + stop condition + seed + priority + tag + deadline +
/// attempts).  Identical job lines collide by construction — the runner
/// disambiguates them with a "#<occurrence>" suffix in input order, which
/// is what the journal stores and the report extras echo.
std::string job_fingerprint(const BatchJob& job);

/// Deprecated shim over ProblemRegistry (kept for the legacy "format"
/// key): true exactly for the registered file-loader families — qubo,
/// gset, qaplib.  New code should query ProblemRegistry::global().
bool known_model_format(const std::string& format);

/// Deprecated shim over ProblemRegistry (the one loader surface): builds
/// "<format>:<path>" and encodes it.  Throws std::invalid_argument for an
/// unknown format and the reader's error on IO failure.  New code should
/// create a Problem and keep it for decode/verify.
QuboModel load_model_file(const std::string& format,
                          const std::string& path);

/// The bounded-run policy the single-run CLI applies, shared with batch
/// jobs: when a wall-clock or work budget governs the run, lift the
/// baselines' small default iteration budgets so the StopCondition decides
/// when to stop.  A target alone does not lift (it may never be reached).
/// Explicitly set options always win.
void apply_time_governed_budgets(const std::string& solver,
                                 const StopCondition& stop,
                                 SolverOptions& options);

/// Runs every job in `jobs_in` on a fresh SolverService and streams one
/// JSON object per line into `out` as jobs complete; diagnostics go to
/// `err`.  Returns 0 when every line parsed and every job finished
/// normally, 130 when options.interrupt fired, 1 otherwise (malformed
/// lines and failed/rejected jobs still produce an output line each, so
/// callers can join inputs to outcomes).
int run_batch(std::istream& jobs_in, std::ostream& out, std::ostream& err,
              const BatchOptions& options = {});

}  // namespace dabs::service
