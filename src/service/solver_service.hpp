// Asynchronous batch-solve service over the unified Solver API — the layer
// that turns one-shot solve() calls into a concurrent, cancellable,
// deduplicating job pipeline (PR 3 named it as its natural next step; the
// JSONL front end in batch_runner.hpp and any future RPC surface sit on
// top of this).
//
//   SolverService svc({.threads = 4});
//   JobSpec spec;
//   spec.model = svc.cache().intern(build_model());
//   spec.solver = "tabu";
//   spec.stop.time_limit_seconds = 1.0;
//   JobId id = svc.submit(std::move(spec));
//   JobSnapshot done = svc.wait(id);     // done.report is a SolveReport
//
// Scheduling: jobs queue in (priority desc, submission order) and run on a
// shared ThreadPool.  Cancellation: cancel() fires the job's StopToken
// (PR 3's cooperative protocol) when running and retires the job
// immediately when still queued.  Observability: a service-owned
// ProgressObserver feeds a bounded per-job event log (new-best and tick
// events) readable from any thread via snapshot().
//
// Robustness (the fault-tolerance slice):
//
//   - Retry: a job whose solve() throws a retryable error (std::bad_alloc,
//     or any exception whose message carries fail::kRetryablePrefix) is
//     re-run up to JobSpec::max_attempts times with bounded exponential
//     backoff + deterministic jitter; the attempt count and final
//     disposition land in the report extras.
//   - Deadlines: JobSpec::deadline_seconds arms a watchdog that fires the
//     job's StopToken when the wall clock (measured from submit) runs out —
//     a queued job retires immediately, a running one unwinds
//     cooperatively; the report extras carry "deadline_exceeded".
//   - Admission control: Config::max_queue_depth sheds load instead of
//     growing the queue unboundedly — an over-capacity submit returns a
//     job that is immediately terminal in the new kRejected state.
//   - Observation hook: Config::on_started fires (on the worker thread,
//     outside the service lock) when a worker picks a job up — the batch
//     runner journals the transition.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/solve_report.hpp"
#include "core/solver.hpp"
#include "core/solver_registry.hpp"
#include "obs/trace.hpp"
#include "service/model_cache.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace dabs::service {

using JobId = std::uint64_t;

enum class JobState : std::uint8_t {
  kQueued,     // submitted, waiting for a worker
  kRunning,    // a worker is inside Solver::solve
  kDone,       // solve returned normally (report valid)
  kCancelled,  // cancelled before or during the run (report valid)
  kFailed,     // solve threw and retries are exhausted (error holds it)
  kRejected,   // shed by admission control at submit (error holds why)
};

const char* to_string(JobState state) noexcept;
inline bool is_terminal(JobState state) noexcept {
  return state == JobState::kDone || state == JobState::kCancelled ||
         state == JobState::kFailed || state == JobState::kRejected;
}

/// One entry of the bounded per-job event log.
struct JobEvent {
  enum class Kind : std::uint8_t { kNewBest, kTick };
  Kind kind = Kind::kNewBest;
  double elapsed_seconds = 0.0;
  Energy best_energy = kInfiniteEnergy;
  std::uint64_t work = 0;
};

/// Everything one job needs, fully specified at submit time.
struct JobSpec {
  /// Shared problem instance — route it through ModelCache so duplicate
  /// submissions share one model.  Must be non-null.
  std::shared_ptr<const QuboModel> model;

  /// Registry name ("dabs", "sa", ...; see SolverRegistry::global()).
  std::string solver = "dabs";
  /// Solver-specific string options, forwarded to the registry factory.
  SolverOptions options;

  StopCondition stop;
  std::optional<std::uint64_t> seed;

  /// Higher runs first; ties run in submission order.
  int priority = 0;

  /// Caller's label, echoed into the report extras ("tag") and snapshots.
  std::string tag;

  /// Granularity of kTick entries in the event log (0 = new-best only).
  double tick_seconds = 0.0;

  /// Wall-clock deadline in seconds, measured from submit (0 = none).  The
  /// watchdog fires the job's StopToken when it expires; the job ends
  /// kCancelled with "deadline_exceeded" in its extras.
  double deadline_seconds = 0.0;

  /// Total solve() attempts allowed for retryable failures (>= 1).  Only
  /// std::bad_alloc and fail::kRetryablePrefix-marked errors retry;
  /// anything else fails on the first throw.
  std::uint32_t max_attempts = 1;
  /// Initial retry backoff; doubles per failed attempt (with deterministic
  /// jitter in [0.5, 1.0]x), capped at retry_backoff_max_seconds.
  double retry_backoff_seconds = 0.05;
  double retry_backoff_max_seconds = 2.0;

  /// Merged into the final report's extras (caller-owned annotations, e.g.
  /// the batch front end records the model-cache outcome here).
  std::map<std::string, std::string> extras;
};

/// Point-in-time copy of a job's externally visible state.
struct JobSnapshot {
  JobId id = 0;
  JobState state = JobState::kQueued;
  std::string tag;
  int priority = 0;
  /// Valid for kDone and kCancelled (a cancelled-while-running job reports
  /// its best-so-far; a cancelled-while-queued job reports an empty run).
  SolveReport report;
  /// What solve() threw (kFailed) or why admission shed the job
  /// (kRejected).
  std::string error;
  /// Chronological bounded event log (oldest first).
  std::vector<JobEvent> events;
  /// Events discarded once the log was full (oldest are dropped).
  std::uint64_t events_dropped = 0;
  /// Lifecycle timestamps in seconds on the owning service's monotonic
  /// epoch (the trace-span source; surfaced as queue/run/total durations
  /// in the report extras).  Negative = never reached that state.
  double submitted_seconds = -1.0;
  double started_seconds = -1.0;   // worker picked the job up
  double finished_seconds = -1.0;  // reached a terminal state
};

/// Maps one (ideally terminal) snapshot onto the obs trace model: queued /
/// run spans from the lifecycle timestamps, tick instants from the event
/// log.  Callers override job_id afterwards when they expose composed ids
/// (the sharded server's global ids).
obs::JobTrace job_trace(const JobSnapshot& snapshot);

/// Incremental slice of one job's event log for streaming consumers (the
/// HTTP events endpoint).  Produced by SolverService::events_since().
struct JobEventBatch {
  /// Events at sequence >= the passed cursor, oldest first.
  std::vector<JobEvent> events;
  /// Job state at the time of the read — stream producers finish once the
  /// state is terminal and the log is drained.
  JobState state = JobState::kQueued;
  /// True when the cursor had fallen behind the bounded ring: events in
  /// [cursor, oldest retained) were dropped and cannot be recovered; the
  /// batch resumes at the oldest retained event.
  bool gap = false;
};

/// One consistent point-in-time view of the service and its model cache,
/// taken under a single lock acquisition so the numbers agree with each
/// other (the /v1/stats endpoint and operator tooling read this).
struct ServiceStats {
  std::size_t queue_depth = 0;  // submitted, not yet picked up
  std::size_t active = 0;       // inside Solver::solve right now
  std::size_t outstanding = 0;  // queue_depth + active
  std::size_t retained = 0;     // job records held (not yet release()d)
  std::uint64_t submitted = 0;  // lifetime submits (rejected ones included)
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t rejected = 0;
  ModelCache::Stats cache;
};

/// Bounded exponential backoff with deterministic jitter: for the
/// `failures`-th consecutive failure (1-based), min(cap, initial *
/// 2^(failures-1)) scaled by a jitter factor in [0.5, 1.0] drawn from a
/// salt-seeded xorshift — deterministic for a fixed (salt, failures), so
/// tests and replays see stable schedules while distinct jobs decorrelate.
double retry_backoff(double initial_seconds, double cap_seconds,
                     std::uint32_t failures, std::uint64_t salt);

class SolverService {
 public:
  struct Config {
    /// Worker threads solving jobs.
    std::size_t threads = 2;
    /// Per-job event-log bound; the newest events win.
    std::size_t max_events_per_job = 64;
    /// Byte budget of the owned ModelCache.
    std::size_t cache_bytes = ModelCache::kDefaultMaxBytes;
    /// Admission bound: submits past this queue depth are shed as
    /// kRejected instead of queued (0 = unbounded).
    std::size_t max_queue_depth = 0;
    /// Fired on the worker thread, outside the service lock, when the
    /// worker picks the job up (once per job, before the first attempt).
    /// Keep it fast; must not call back into the service.
    std::function<void(JobId, const JobSpec&)> on_started;
  };

  SolverService();
  explicit SolverService(Config config);
  /// Cancels everything still queued or running and joins the workers.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Validates the spec (non-null model, known solver, buildable options —
  /// throws std::invalid_argument otherwise) and enqueues the job.  When
  /// admission control sheds it, the returned job is already terminal in
  /// state kRejected (it still flows through the completion stream so
  /// batch consumers see exactly one outcome per submit).
  JobId submit(JobSpec spec);

  /// Current state; throws std::out_of_range for an unknown id.
  JobState state(JobId id) const;

  /// Full snapshot (report/events copied); throws for an unknown id.
  JobSnapshot snapshot(JobId id) const;

  /// Blocks until the job reaches a terminal state, then snapshots it.
  /// Throws std::out_of_range for an id that was never submitted, and for
  /// one whose record a concurrent release() dropped mid-wait.
  JobSnapshot wait(JobId id);

  /// wait() with a timeout: nullopt when the job is still not terminal
  /// after `seconds`.  Same std::out_of_range contract as wait().
  std::optional<JobSnapshot> wait_for(JobId id, double seconds);

  /// wait() with an absolute deadline; same contract as wait_for().
  std::optional<JobSnapshot> wait_until(
      JobId id, std::chrono::steady_clock::time_point deadline);

  /// Blocks until every submitted job is terminal.
  void wait_all();

  /// Completion stream for out-of-order consumers: blocks until some job
  /// finishes that no previous wait_any_finished() call returned, and
  /// returns its id.  Returns nullopt when no submitted job remains
  /// unclaimed.  Each finished job is delivered exactly once across all
  /// callers.
  std::optional<JobId> wait_any_finished();

  /// wait_any_finished() with a timeout: nullopt when nothing finished
  /// within `seconds` (callers distinguish "timed out" from "none left"
  /// via outstanding()/their own bookkeeping).
  std::optional<JobId> wait_any_finished_for(double seconds);

  /// Non-blocking wait_any_finished(): a finished unclaimed job id if one
  /// is ready right now, nullopt otherwise.
  std::optional<JobId> try_any_finished();

  /// Drops a terminal job's record (report, events, solution) so long
  /// batches do not accumulate every finished job for the service's
  /// lifetime.  Also forfeits the job's pending completion-stream
  /// delivery if it was never claimed.  Returns false when the id is
  /// unknown or the job has not finished; after release the id is
  /// unknown to state()/snapshot()/wait().
  bool release(JobId id);

  /// Cancels a job: a queued job retires immediately (kCancelled), a
  /// running job gets its StopToken fired and winds down cooperatively
  /// (a retry backoff in progress is interrupted).  Returns false when
  /// the job is unknown or already terminal.
  bool cancel(JobId id);

  /// Fires every non-terminal job's cancellation.
  void cancel_all();

  /// Jobs submitted but not yet picked up by a worker.
  std::size_t queue_depth() const;
  /// Jobs currently inside Solver::solve.
  std::size_t active_count() const;
  /// Jobs not yet terminal (queued + running).
  std::size_t outstanding() const;

  /// Every gauge and lifetime counter in one locked read (plus the model
  /// cache's own stats) — a mutually consistent snapshot, unlike calling
  /// the individual accessors back to back.
  ServiceStats stats() const;

  /// Events appended to `id`'s log at sequence >= `cursor`, advancing
  /// `cursor` past what is returned.  Sequences count every event ever
  /// appended to the job (0-based); when the bounded ring has already
  /// dropped part of the requested range the batch is flagged `gap` and
  /// resumes at the oldest retained event.  Throws std::out_of_range for
  /// an unknown id.
  JobEventBatch events_since(JobId id, std::uint64_t& cursor) const;

  /// The service-owned model cache (thread-safe; share freely).
  ModelCache& cache() noexcept { return cache_; }

 private:
  struct Job;
  class EventLogObserver;

  void run_one();
  void watchdog_loop();
  void ensure_watchdog_locked();
  void update_gauges_locked();
  void finalize_locked(Job& job, JobState state);
  JobSnapshot snapshot_locked(JobId id) const;
  static SolveRequest request_for(const Job& job,
                                  ProgressObserver* observer);

  /// (priority desc, id asc) run order.  Compares priorities directly —
  /// negating would overflow on INT_MIN, which is reachable from JSONL
  /// input.
  struct PendingKey {
    int priority;
    JobId id;
    bool operator<(const PendingKey& other) const noexcept {
      return priority != other.priority ? priority > other.priority
                                        : id < other.id;
    }
  };

  const Config config_;
  ModelCache cache_;
  /// Monotonic zero point for every job lifecycle timestamp.
  Stopwatch epoch_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable cv_watchdog_;
  std::map<JobId, std::unique_ptr<Job>> jobs_;
  std::map<PendingKey, JobId> pending_;
  std::deque<JobId> finished_;  // terminal, not yet claimed by wait_any
  /// Armed per-job deadlines (absolute), consumed by the watchdog; entries
  /// for already-terminal jobs are skipped when they come due.
  std::multimap<std::chrono::steady_clock::time_point, JobId> deadlines_;
  JobId next_id_ = 1;
  std::size_t running_ = 0;
  std::size_t unclaimed_ = 0;  // submitted minus wait_any deliveries
  /// Lifetime counters behind stats(): bumped at submit / finalize.
  std::uint64_t stat_submitted_ = 0;
  std::uint64_t stat_done_ = 0;
  std::uint64_t stat_failed_ = 0;
  std::uint64_t stat_cancelled_ = 0;
  std::uint64_t stat_rejected_ = 0;
  bool shutting_down_ = false;
  /// Lazily started on the first deadline submit; joined in the dtor.
  std::thread watchdog_;

  /// Declared last: its destructor drains queued drain-tasks, which touch
  /// everything above.
  ThreadPool pool_;
};

}  // namespace dabs::service
