// Asynchronous batch-solve service over the unified Solver API — the layer
// that turns one-shot solve() calls into a concurrent, cancellable,
// deduplicating job pipeline (PR 3 named it as its natural next step; the
// JSONL front end in batch_runner.hpp and any future RPC surface sit on
// top of this).
//
//   SolverService svc({.threads = 4});
//   JobSpec spec;
//   spec.model = svc.cache().intern(build_model());
//   spec.solver = "tabu";
//   spec.stop.time_limit_seconds = 1.0;
//   JobId id = svc.submit(std::move(spec));
//   JobSnapshot done = svc.wait(id);     // done.report is a SolveReport
//
// Scheduling: jobs queue in (priority desc, submission order) and run on a
// shared ThreadPool.  Cancellation: cancel() fires the job's StopToken
// (PR 3's cooperative protocol) when running and retires the job
// immediately when still queued.  Observability: a service-owned
// ProgressObserver feeds a bounded per-job event log (new-best and tick
// events) readable from any thread via snapshot().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/solve_report.hpp"
#include "core/solver.hpp"
#include "core/solver_registry.hpp"
#include "service/model_cache.hpp"
#include "util/thread_pool.hpp"

namespace dabs::service {

using JobId = std::uint64_t;

enum class JobState : std::uint8_t {
  kQueued,     // submitted, waiting for a worker
  kRunning,    // a worker is inside Solver::solve
  kDone,       // solve returned normally (report valid)
  kCancelled,  // cancelled before or during the run (report valid)
  kFailed,     // solve threw (error holds the message)
};

const char* to_string(JobState state) noexcept;
inline bool is_terminal(JobState state) noexcept {
  return state == JobState::kDone || state == JobState::kCancelled ||
         state == JobState::kFailed;
}

/// One entry of the bounded per-job event log.
struct JobEvent {
  enum class Kind : std::uint8_t { kNewBest, kTick };
  Kind kind = Kind::kNewBest;
  double elapsed_seconds = 0.0;
  Energy best_energy = kInfiniteEnergy;
  std::uint64_t work = 0;
};

/// Everything one job needs, fully specified at submit time.
struct JobSpec {
  /// Shared problem instance — route it through ModelCache so duplicate
  /// submissions share one model.  Must be non-null.
  std::shared_ptr<const QuboModel> model;

  /// Registry name ("dabs", "sa", ...; see SolverRegistry::global()).
  std::string solver = "dabs";
  /// Solver-specific string options, forwarded to the registry factory.
  SolverOptions options;

  StopCondition stop;
  std::optional<std::uint64_t> seed;

  /// Higher runs first; ties run in submission order.
  int priority = 0;

  /// Caller's label, echoed into the report extras ("tag") and snapshots.
  std::string tag;

  /// Granularity of kTick entries in the event log (0 = new-best only).
  double tick_seconds = 0.0;

  /// Merged into the final report's extras (caller-owned annotations, e.g.
  /// the batch front end records the model-cache outcome here).
  std::map<std::string, std::string> extras;
};

/// Point-in-time copy of a job's externally visible state.
struct JobSnapshot {
  JobId id = 0;
  JobState state = JobState::kQueued;
  std::string tag;
  int priority = 0;
  /// Valid for kDone and kCancelled (a cancelled-while-running job reports
  /// its best-so-far; a cancelled-while-queued job reports an empty run).
  SolveReport report;
  /// What solve() threw; only for kFailed.
  std::string error;
  /// Chronological bounded event log (oldest first).
  std::vector<JobEvent> events;
  /// Events discarded once the log was full (oldest are dropped).
  std::uint64_t events_dropped = 0;
};

class SolverService {
 public:
  struct Config {
    /// Worker threads solving jobs.
    std::size_t threads = 2;
    /// Per-job event-log bound; the newest events win.
    std::size_t max_events_per_job = 64;
    /// Byte budget of the owned ModelCache.
    std::size_t cache_bytes = ModelCache::kDefaultMaxBytes;
  };

  SolverService();
  explicit SolverService(Config config);
  /// Cancels everything still queued or running and joins the workers.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Validates the spec (non-null model, known solver, buildable options —
  /// throws std::invalid_argument otherwise) and enqueues the job.
  JobId submit(JobSpec spec);

  /// Current state; throws std::out_of_range for an unknown id.
  JobState state(JobId id) const;

  /// Full snapshot (report/events copied); throws for an unknown id.
  JobSnapshot snapshot(JobId id) const;

  /// Blocks until the job reaches a terminal state, then snapshots it.
  JobSnapshot wait(JobId id);

  /// Blocks until every submitted job is terminal.
  void wait_all();

  /// Completion stream for out-of-order consumers: blocks until some job
  /// finishes that no previous wait_any_finished() call returned, and
  /// returns its id.  Returns nullopt when no submitted job remains
  /// unclaimed.  Each finished job is delivered exactly once across all
  /// callers.
  std::optional<JobId> wait_any_finished();

  /// Non-blocking wait_any_finished(): a finished unclaimed job id if one
  /// is ready right now, nullopt otherwise.
  std::optional<JobId> try_any_finished();

  /// Drops a terminal job's record (report, events, solution) so long
  /// batches do not accumulate every finished job for the service's
  /// lifetime.  Also forfeits the job's pending completion-stream
  /// delivery if it was never claimed.  Returns false when the id is
  /// unknown or the job has not finished; after release the id is
  /// unknown to state()/snapshot()/wait().
  bool release(JobId id);

  /// Cancels a job: a queued job retires immediately (kCancelled), a
  /// running job gets its StopToken fired and winds down cooperatively.
  /// Returns false when the job is unknown or already terminal.
  bool cancel(JobId id);

  /// Fires every non-terminal job's cancellation.
  void cancel_all();

  /// Jobs submitted but not yet picked up by a worker.
  std::size_t queue_depth() const;
  /// Jobs currently inside Solver::solve.
  std::size_t active_count() const;
  /// Jobs not yet terminal (queued + running).
  std::size_t outstanding() const;

  /// The service-owned model cache (thread-safe; share freely).
  ModelCache& cache() noexcept { return cache_; }

 private:
  struct Job;
  class EventLogObserver;

  void run_one();
  void finalize_locked(Job& job, JobState state);
  JobSnapshot snapshot_locked(JobId id) const;
  static SolveRequest request_for(const Job& job,
                                  ProgressObserver* observer);

  /// (priority desc, id asc) run order.  Compares priorities directly —
  /// negating would overflow on INT_MIN, which is reachable from JSONL
  /// input.
  struct PendingKey {
    int priority;
    JobId id;
    bool operator<(const PendingKey& other) const noexcept {
      return priority != other.priority ? priority > other.priority
                                        : id < other.id;
    }
  };

  const Config config_;
  ModelCache cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<JobId, std::unique_ptr<Job>> jobs_;
  std::map<PendingKey, JobId> pending_;
  std::deque<JobId> finished_;  // terminal, not yet claimed by wait_any
  JobId next_id_ = 1;
  std::size_t running_ = 0;
  std::size_t unclaimed_ = 0;  // submitted minus wait_any deliveries
  bool shutting_down_ = false;

  /// Declared last: its destructor drains queued drain-tasks, which touch
  /// everything above.
  ThreadPool pool_;
};

}  // namespace dabs::service
