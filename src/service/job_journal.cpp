#include "service/job_journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/json_reader.hpp"
#include "io/json_writer.hpp"
#include "util/failpoint.hpp"

namespace dabs::service {

const char* to_string(JournalEvent event) noexcept {
  switch (event) {
    case JournalEvent::kSubmitted:
      return "submitted";
    case JournalEvent::kStarted:
      return "started";
    case JournalEvent::kDone:
      return "done";
    case JournalEvent::kFailed:
      return "failed";
    case JournalEvent::kCancelled:
      return "cancelled";
    case JournalEvent::kRejected:
      return "rejected";
  }
  return "?";
}

bool is_replay_terminal(JournalEvent event) noexcept {
  return event == JournalEvent::kDone || event == JournalEvent::kFailed;
}

namespace {

bool event_from_string(const std::string& name, JournalEvent* out) {
  for (const JournalEvent e :
       {JournalEvent::kSubmitted, JournalEvent::kStarted, JournalEvent::kDone,
        JournalEvent::kFailed, JournalEvent::kCancelled,
        JournalEvent::kRejected}) {
    if (name == to_string(e)) {
      *out = e;
      return true;
    }
  }
  return false;
}

}  // namespace

JobJournal::JobJournal(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open journal '" + path_ +
                             "': " + std::strerror(errno));
  }
}

JobJournal::~JobJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void JobJournal::append(const JournalRecord& record) {
  // The failpoint sits before any serialization so an injected append
  // failure leaves the file untouched — the shape of a disk-full error.
  fail::point("journal.append");

  std::ostringstream line;
  {
    io::JsonWriter json(line);
    json.begin_object()
        .value("event", to_string(record.event))
        .value("fp", record.fingerprint);
    if (record.line != 0) json.value("line", record.line);
    if (!record.tag.empty()) json.value("tag", record.tag);
    if (record.attempt != 0) json.value("attempt", record.attempt);
    if (!record.detail.empty()) json.value("detail", record.detail);
    json.value("ts",
               std::chrono::duration<double>(
                   std::chrono::system_clock::now().time_since_epoch())
                   .count());
    json.end_object();
  }
  line << "\n";
  const std::string text = line.str();

  std::lock_guard lock(mu_);
  std::size_t written = 0;
  while (written < text.size()) {
    const ssize_t n =
        ::write(fd_, text.data() + written, text.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("journal write failed ('" + path_ +
                               "'): " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fdatasync(fd_) != 0) {
    throw std::runtime_error("journal fdatasync failed ('" + path_ +
                             "'): " + std::strerror(errno));
  }
  ++appended_;
}

std::uint64_t JobJournal::appended() const noexcept {
  // appended_ only moves under mu_, but reading a stale count is harmless
  // (summary-line accounting); no lock needed for a 64-bit aligned load on
  // the platforms this targets — still, keep it simple and safe:
  return appended_;
}

bool JobJournal::Replay::terminal(const std::string& fingerprint) const {
  const auto it = last_event.find(fingerprint);
  return it != last_event.end() && is_replay_terminal(it->second);
}

JobJournal::Replay JobJournal::replay(const std::string& path) {
  Replay replay;
  std::ifstream in(path);
  if (!in) return replay;  // never-written journal: clean empty resume

  constexpr std::size_t kMaxWarnings = 16;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;  // blank: not corruption
    const auto skip = [&](const std::string& why) {
      ++replay.skipped;
      if (replay.warnings.size() < kMaxWarnings) {
        replay.warnings.push_back("journal line " + std::to_string(line_no) +
                                  ": " + why);
      }
    };
    io::JsonValue record;
    try {
      record = io::parse_json(line);
    } catch (const std::exception& e) {
      // Interleaved garbage or the torn final line of a crash mid-write.
      skip(e.what());
      continue;
    }
    const io::JsonValue* event = record.find("event");
    const io::JsonValue* fp = record.find("fp");
    if (event == nullptr || !event->is_string() || fp == nullptr ||
        !fp->is_string() || fp->as_string().empty()) {
      skip("not a journal record (missing event/fp)");
      continue;
    }
    JournalEvent parsed;
    if (!event_from_string(event->as_string(), &parsed)) {
      skip("unknown event '" + event->as_string() + "'");
      continue;
    }
    ++replay.records;
    // Last record wins; a duplicate terminal record (crash between the
    // report write and the process exit, then a re-run) is idempotent.
    replay.last_event[fp->as_string()] = parsed;
    if (parsed == JournalEvent::kSubmitted) {
      const io::JsonValue* detail = record.find("detail");
      if (detail != nullptr && detail->is_string() &&
          !detail->as_string().empty()) {
        replay.submitted_detail[fp->as_string()] = detail->as_string();
      }
    }
  }
  return replay;
}

}  // namespace dabs::service
