// Write-ahead job journal for the batch service: one fsync'd JSONL record
// per job state transition, keyed by a stable job fingerprint, so a batch
// killed mid-flight (crash, OOM-kill, SIGKILL) can be resumed with
// `dabs_cli batch --journal <path> --resume` — already-terminal jobs are
// skipped, everything else re-enqueues, and the union of streamed reports
// across the runs covers the job set exactly once.
//
// Record format (one JSON object per line, the repo's json_reader /
// JsonWriter wire format):
//
//   {"event": "submitted", "fp": "91ab...#1", "line": 3, "tag": "hot",
//    "attempt": 2, "detail": "...", "ts": 1754556123.4}
//
//   event    submitted | started | done | failed | cancelled | rejected
//   fp       job fingerprint: FNV-1a over the job definition (problem or
//            model spec + params + solver + options + stop + seed +
//            priority + tag + deadline), "#N"-suffixed per duplicate line
//            so identical job lines stay distinct (see
//            batch_runner.hpp::job_fingerprint)
//   line     input line number (provenance; replay keys on fp alone)
//   attempt  retry attempt that produced the record (0 = not applicable)
//   detail   error message / disposition, when there is one
//   ts       wall-clock seconds since the epoch (operator forensics only)
//
// Durability: append() writes the whole line with O_APPEND semantics and
// fdatasyncs before returning, so every record that reached the caller's
// control flow survives a kill -9.  Replay is corruption-tolerant: a
// truncated final line (the crash landed mid-write), interleaved garbage,
// duplicate terminal records, and zero-byte files all recover — what
// parses is replayed, the rest is counted and warned about, nothing
// throws.
//
// Resume semantics: only done and failed are terminal for replay.  A
// cancelled or rejected job re-enqueues on --resume — cancellation (^C)
// and admission-control shedding both mean "not run to completion; run it
// next time", while failed means retries were already exhausted.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dabs::service {

enum class JournalEvent : std::uint8_t {
  kSubmitted,
  kStarted,
  kDone,
  kFailed,
  kCancelled,
  kRejected,
};

const char* to_string(JournalEvent event) noexcept;

/// True for the events --resume treats as "this job is finished": done and
/// failed.  Cancelled/rejected jobs re-enqueue (see the header comment).
bool is_replay_terminal(JournalEvent event) noexcept;

struct JournalRecord {
  JournalEvent event = JournalEvent::kSubmitted;
  std::string fingerprint;
  std::uint64_t line = 0;
  std::string tag;
  std::uint32_t attempt = 0;
  std::string detail;
};

/// Append-side handle.  Thread-safe: the batch runner appends from its
/// driving thread while the service's on-started hook appends from worker
/// threads.
class JobJournal {
 public:
  /// Opens (creating if needed) `path` for appending.  Throws
  /// std::runtime_error when the file cannot be opened.
  explicit JobJournal(std::string path);
  ~JobJournal();

  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Appends one record as a JSON line and fdatasyncs.  Throws
  /// std::runtime_error on IO failure (callers degrade gracefully: the
  /// batch keeps running, durability is flagged in the summary).
  void append(const JournalRecord& record);

  const std::string& path() const noexcept { return path_; }
  /// Records successfully appended through this handle.
  std::uint64_t appended() const noexcept;

  /// Replay outcome: the last event seen per fingerprint plus corruption
  /// accounting.
  struct Replay {
    std::map<std::string, JournalEvent> last_event;
    /// Per fingerprint, the `detail` payload of its most recent submitted
    /// record.  The HTTP solve server stores the raw request JSON there at
    /// submit time, so `serve --resume` can reconstruct and re-enqueue
    /// jobs that never reached a terminal record.  Fingerprints whose
    /// submitted records carried no detail are absent.
    std::map<std::string, std::string> submitted_detail;
    std::size_t records = 0;        // lines that parsed as journal records
    std::size_t skipped = 0;        // lines that did not
    std::vector<std::string> warnings;  // one per skipped line (bounded)

    /// True when `fingerprint`'s last record is terminal for resume.
    bool terminal(const std::string& fingerprint) const;
  };

  /// Reads `path` tolerantly (see the header comment).  A missing file
  /// yields an empty replay — resuming against a journal that never got
  /// written is a no-op, not an error.
  static Replay replay(const std::string& path);

 private:
  std::mutex mu_;
  std::string path_;
  int fd_ = -1;
  std::uint64_t appended_ = 0;
};

}  // namespace dabs::service
