// Content-addressed, byte-bounded cache of immutable QuboModel instances.
//
// The batch service runs many jobs over few distinct problem instances (the
// annealing-service access pattern: one hot model, thousands of requests).
// ModelCache dedupes them at two levels:
//
//   - intern(model): content-hashes the built model; N structurally equal
//     models collapse to one shared_ptr regardless of where they came from.
//   - get_or_load(key, loader): source-level aliases ("path#format") that
//     skip the parse entirely on repeat lookups, then fall through to
//     content interning so two distinct paths with equal content still
//     share storage.
//
// Bounded LRU by approximate resident bytes; eviction only drops the
// cache's reference — outstanding shared_ptrs keep their model alive, so a
// running job never loses its instance.  All operations are thread-safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "qubo/qubo_model.hpp"

namespace dabs::service {

class ModelCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;       // key or content matches
    std::uint64_t misses = 0;     // models actually inserted (or oversized)
    std::uint64_t evictions = 0;  // entries dropped to respect max_bytes
    std::size_t entries = 0;      // resident models right now
    std::size_t bytes = 0;        // approximate resident bytes right now
  };

  /// Default budget: enough for several dense K2000-class instances.
  static constexpr std::size_t kDefaultMaxBytes = std::size_t{256} << 20;

  explicit ModelCache(std::size_t max_bytes = kDefaultMaxBytes);

  ModelCache(const ModelCache&) = delete;
  ModelCache& operator=(const ModelCache&) = delete;

  /// Interns a built model: returns the cached instance when one with equal
  /// content exists (a hit), otherwise stores and returns `model` itself.
  /// `was_hit` (optional) reports which happened.  A model larger than the
  /// whole budget is returned uncached (counted as a miss).
  std::shared_ptr<const QuboModel> intern(QuboModel&& model,
                                          bool* was_hit = nullptr);

  /// Key-aliased lookup: returns the entry `key` maps to, or runs `load`
  /// and interns the result under `key`.  The loader runs outside the cache
  /// lock; concurrent loads of one key are possible and collapse at intern
  /// time.
  std::shared_ptr<const QuboModel> get_or_load(
      const std::string& key, const std::function<QuboModel()>& load,
      bool* was_hit = nullptr);

  Stats stats() const;
  std::size_t max_bytes() const noexcept { return max_bytes_; }

  /// Drops every cached entry and key alias (counters keep accumulating).
  void clear();

  /// FNV-1a over the model's content: size, backend, diagonal, and every
  /// CSR row.  Two models with equal content always hash equal; the
  /// kernel backend participates because it changes runtime behavior even
  /// though results are bit-exact across backends.
  static std::uint64_t content_hash(const QuboModel& model);

  /// Structural equality on the same fields content_hash covers.
  static bool same_content(const QuboModel& a, const QuboModel& b);

  /// Approximate resident bytes of a built model (CSR + diagonal + dense
  /// mirror when present) — the unit the LRU budget is measured in.
  static std::size_t approximate_bytes(const QuboModel& model);

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::size_t bytes = 0;
    std::shared_ptr<const QuboModel> model;
    std::vector<std::string> keys;  // aliases pointing at this entry
  };
  using Lru = std::list<Entry>;  // front = most recently used

  std::shared_ptr<const QuboModel> intern_locked(QuboModel&& model,
                                                 bool* was_hit,
                                                 const std::string* key);
  void touch_locked(Lru::iterator it);
  void evict_locked();
  void drop_entry_locked(Lru::iterator it);

  mutable std::mutex mu_;
  const std::size_t max_bytes_;
  Lru lru_;
  std::map<std::uint64_t, std::vector<Lru::iterator>> by_hash_;
  std::map<std::string, Lru::iterator> by_key_;
  Stats stats_;
};

}  // namespace dabs::service
