#include "service/model_cache.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"

namespace dabs::service {

namespace {

/// Process-wide cache metrics.  Counters aggregate across every ModelCache
/// instance; the resident gauges track whichever cache updated last (in
/// production there is one service-owned cache per process).
struct CacheMetrics {
  obs::Counter* hits = nullptr;
  obs::Counter* misses = nullptr;
  obs::Counter* evictions = nullptr;
  obs::Gauge* bytes = nullptr;
  obs::Gauge* entries = nullptr;
};

CacheMetrics& cache_metrics() {
  static CacheMetrics metrics = [] {
    auto& reg = obs::MetricsRegistry::global();
    CacheMetrics m;
    m.hits = &reg.counter("dabs_model_cache_hits_total",
                          "Model-cache lookups served from cache (key or "
                          "content hit).");
    m.misses = &reg.counter("dabs_model_cache_misses_total",
                            "Model-cache lookups that interned a new model.");
    m.evictions = &reg.counter("dabs_model_cache_evictions_total",
                               "Entries evicted to stay within the byte "
                               "budget.");
    m.bytes = &reg.gauge("dabs_model_cache_resident_bytes",
                         "Approximate bytes of resident cached models.");
    m.entries = &reg.gauge("dabs_model_cache_entries",
                           "Resident cached models.");
    return m;
  }();
  return metrics;
}

}  // namespace

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline void mix(std::uint64_t& h, std::uint64_t v) {
  // Hash the full 64-bit value byte by byte (FNV-1a).
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
}

}  // namespace

ModelCache::ModelCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

std::uint64_t ModelCache::content_hash(const QuboModel& model) {
  std::uint64_t h = kFnvOffset;
  const auto n = static_cast<VarIndex>(model.size());
  mix(h, n);
  mix(h, model.edge_count());
  mix(h, static_cast<std::uint64_t>(model.backend()));
  for (VarIndex i = 0; i < n; ++i) {
    mix(h, static_cast<std::uint64_t>(
               static_cast<std::int64_t>(model.diag(i))));
    const auto cols = model.neighbors(i);
    const auto vals = model.weights(i);
    mix(h, cols.size());
    for (std::size_t k = 0; k < cols.size(); ++k) {
      mix(h, cols[k]);
      mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(vals[k])));
    }
  }
  return h;
}

bool ModelCache::same_content(const QuboModel& a, const QuboModel& b) {
  if (a.size() != b.size() || a.edge_count() != b.edge_count() ||
      a.backend() != b.backend()) {
    return false;
  }
  const auto n = static_cast<VarIndex>(a.size());
  for (VarIndex i = 0; i < n; ++i) {
    if (a.diag(i) != b.diag(i)) return false;
    const auto ca = a.neighbors(i);
    const auto cb = b.neighbors(i);
    const auto va = a.weights(i);
    const auto vb = b.weights(i);
    if (ca.size() != cb.size()) return false;
    if (!std::equal(ca.begin(), ca.end(), cb.begin())) return false;
    if (!std::equal(va.begin(), va.end(), vb.begin())) return false;
  }
  return true;
}

std::size_t ModelCache::approximate_bytes(const QuboModel& model) {
  const std::size_t n = model.size();
  std::size_t bytes = sizeof(QuboModel);
  bytes += n * sizeof(Weight);                               // diagonal
  bytes += (n + 1) * sizeof(std::size_t);                    // row_ptr
  bytes += 2 * model.edge_count() * sizeof(VarIndex);        // columns
  bytes += 2 * model.edge_count() * sizeof(Weight);          // values
  if (model.has_dense_rows()) bytes += n * n * sizeof(Weight);
  return bytes;
}

std::shared_ptr<const QuboModel> ModelCache::intern(QuboModel&& model,
                                                    bool* was_hit) {
  std::lock_guard lock(mu_);
  return intern_locked(std::move(model), was_hit, nullptr);
}

std::shared_ptr<const QuboModel> ModelCache::get_or_load(
    const std::string& key, const std::function<QuboModel()>& load,
    bool* was_hit) {
  {
    std::lock_guard lock(mu_);
    const auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      touch_locked(it->second);
      ++stats_.hits;
      cache_metrics().hits->inc();
      if (was_hit) *was_hit = true;
      return it->second->model;
    }
  }
  // Parse outside the lock; a racing loader of the same key collapses to
  // one stored copy at intern time (content hit for the loser).
  QuboModel model = load();
  std::lock_guard lock(mu_);
  return intern_locked(std::move(model), was_hit, &key);
}

std::shared_ptr<const QuboModel> ModelCache::intern_locked(
    QuboModel&& model, bool* was_hit, const std::string* key) {
  const std::uint64_t hash = content_hash(model);
  if (const auto it = by_hash_.find(hash); it != by_hash_.end()) {
    for (Lru::iterator entry : it->second) {
      if (same_content(*entry->model, model)) {
        touch_locked(entry);
        if (key != nullptr && by_key_.emplace(*key, entry).second) {
          entry->keys.push_back(*key);
        }
        ++stats_.hits;
        cache_metrics().hits->inc();
        if (was_hit) *was_hit = true;
        return entry->model;
      }
    }
  }

  ++stats_.misses;
  cache_metrics().misses->inc();
  if (was_hit) *was_hit = false;
  auto shared = std::make_shared<const QuboModel>(std::move(model));
  const std::size_t bytes = approximate_bytes(*shared);
  if (bytes > max_bytes_) return shared;  // never cacheable; hand it back

  lru_.push_front(Entry{hash, bytes, shared, {}});
  const Lru::iterator entry = lru_.begin();
  by_hash_[hash].push_back(entry);
  if (key != nullptr && by_key_.emplace(*key, entry).second) {
    entry->keys.push_back(*key);
  }
  stats_.bytes += bytes;
  stats_.entries = lru_.size();
  evict_locked();
  cache_metrics().bytes->set(static_cast<std::int64_t>(stats_.bytes));
  cache_metrics().entries->set(static_cast<std::int64_t>(stats_.entries));
  return shared;
}

void ModelCache::touch_locked(Lru::iterator it) {
  if (it != lru_.begin()) lru_.splice(lru_.begin(), lru_, it);
}

void ModelCache::evict_locked() {
  // The newest entry (front) is never evicted: a model worth inserting is
  // worth keeping until something newer pushes it out.
  while (stats_.bytes > max_bytes_ && lru_.size() > 1) {
    drop_entry_locked(std::prev(lru_.end()));
    ++stats_.evictions;
    cache_metrics().evictions->inc();
  }
}

void ModelCache::drop_entry_locked(Lru::iterator it) {
  for (const std::string& key : it->keys) by_key_.erase(key);
  auto& bucket = by_hash_[it->hash];
  bucket.erase(std::find(bucket.begin(), bucket.end(), it));
  if (bucket.empty()) by_hash_.erase(it->hash);
  stats_.bytes -= it->bytes;
  lru_.erase(it);
  stats_.entries = lru_.size();
}

ModelCache::Stats ModelCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void ModelCache::clear() {
  std::lock_guard lock(mu_);
  while (!lru_.empty()) drop_entry_locked(lru_.begin());
  cache_metrics().bytes->set(static_cast<std::int64_t>(stats_.bytes));
  cache_metrics().entries->set(static_cast<std::int64_t>(stats_.entries));
}

}  // namespace dabs::service
