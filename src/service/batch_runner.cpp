#include "service/batch_runner.hpp"

#include <cstdio>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "io/gset.hpp"
#include "io/json_reader.hpp"
#include "io/json_writer.hpp"
#include "io/qaplib.hpp"
#include "io/qubo_text.hpp"
#include "problems/maxcut.hpp"
#include "problems/qap.hpp"

namespace dabs::service {

namespace {

/// Converts one "options" member to the string form SolverOptions parses.
std::string option_to_string(const std::string& key,
                             const io::JsonValue& value) {
  switch (value.kind()) {
    case io::JsonValue::Kind::kString:
      return value.as_string();
    case io::JsonValue::Kind::kBool:
      return value.as_bool() ? "true" : "false";
    case io::JsonValue::Kind::kNumber: {
      try {
        return std::to_string(value.as_int());
      } catch (const std::invalid_argument&) {
        // Non-integral: shortest round-trippable decimal.
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", value.as_double());
        return buf;
      }
    }
    default:
      throw std::invalid_argument("option '" + key +
                                  "' must be a string, number, or boolean");
  }
}

std::int64_t require_nonnegative(const char* key, std::int64_t v) {
  if (v < 0) {
    throw std::invalid_argument(std::string("'") + key +
                                "' must be non-negative");
  }
  return v;
}

}  // namespace

bool known_model_format(const std::string& format) {
  return format == "qubo" || format == "gset" || format == "qaplib";
}

QuboModel load_model_file(const std::string& format,
                          const std::string& path) {
  if (format == "qubo") return io::read_qubo_file(path);
  if (format == "gset") {
    return problems::maxcut_to_qubo(io::read_gset_file(path));
  }
  if (format == "qaplib") {
    return problems::qap_to_qubo(io::read_qaplib_file(path)).model;
  }
  throw std::invalid_argument("unknown model format '" + format +
                              "' (expected qubo, gset, or qaplib)");
}

BatchJob parse_batch_job(const std::string& json_line) {
  const io::JsonValue root = io::parse_json(json_line);
  if (!root.is_object()) {
    throw std::invalid_argument("job line must be a JSON object");
  }

  BatchJob job;
  bool have_model = false;
  for (const auto& [key, value] : root.as_object()) {
    if (key == "model") {
      job.model_path = value.as_string();
      have_model = true;
    } else if (key == "format") {
      job.format = value.as_string();
    } else if (key == "solver") {
      job.spec.solver = value.as_string();
    } else if (key == "options") {
      for (const auto& [opt_key, opt_value] : value.as_object()) {
        job.spec.options.set(opt_key, option_to_string(opt_key, opt_value));
      }
    } else if (key == "time_limit") {
      job.spec.stop.time_limit_seconds = value.as_double();
      if (job.spec.stop.time_limit_seconds < 0) {
        throw std::invalid_argument("'time_limit' must be non-negative");
      }
    } else if (key == "max_batches") {
      job.spec.stop.max_batches = static_cast<std::uint64_t>(
          require_nonnegative("max_batches", value.as_int()));
    } else if (key == "target") {
      job.spec.stop.target_energy = value.as_int();
    } else if (key == "seed") {
      job.spec.seed = static_cast<std::uint64_t>(
          require_nonnegative("seed", value.as_int()));
    } else if (key == "priority") {
      const std::int64_t p = value.as_int();
      if (p < std::numeric_limits<int>::min() ||
          p > std::numeric_limits<int>::max()) {
        throw std::invalid_argument("'priority' is out of range");
      }
      job.spec.priority = static_cast<int>(p);
    } else if (key == "tag") {
      job.spec.tag = value.as_string();
    } else if (key == "tick") {
      job.spec.tick_seconds = value.as_double();
    } else {
      throw std::invalid_argument("unknown job key '" + key + "'");
    }
  }
  if (!have_model || job.model_path.empty()) {
    throw std::invalid_argument("job line requires a non-empty 'model'");
  }
  if (!known_model_format(job.format)) {
    throw std::invalid_argument("unknown model format '" + job.format +
                                "' (expected qubo, gset, or qaplib)");
  }
  return job;
}

void apply_time_governed_budgets(const std::string& solver,
                                 const StopCondition& stop,
                                 SolverOptions& options) {
  // Only a wall-clock or work budget justifies lifting the baselines'
  // own iteration budgets: a target alone may never be reached, and
  // lifting on it would turn a terminating run into an unbounded one.
  if (stop.time_limit_seconds <= 0 && stop.max_batches == 0) return;
  const auto fill = [&](const char* name, const char* key, const char* v) {
    if (solver == name && !options.has(key)) options.set(key, v);
  };
  fill("sa", "restarts", "1000000000");
  fill("greedy-restart", "restarts", "1000000000");
  fill("tabu", "iterations", "1000000000000");
  fill("path-relinking", "relinks", "1000000000");
  fill("subqubo", "iterations", "1000000000");
}

int run_batch(std::istream& jobs_in, std::ostream& out, std::ostream& err,
              const BatchOptions& options) {
  SolverService service({options.threads, options.max_events_per_job,
                         options.cache_bytes});

  std::map<JobId, std::size_t> line_of;  // in-flight only: pruned on emit
  std::size_t line_no = 0;
  std::size_t submitted = 0;
  std::size_t invalid = 0;
  std::size_t load_failed = 0;
  // Every problem line still yields an output line so callers can join
  // inputs to outcomes; the batch keeps going either way.  "invalid"
  // means fix the input (schema violation, unknown solver/option);
  // "failed" means the environment broke (model unreadable) — retryable.
  const auto emit_problem = [&out, &line_no](const char* status,
                                             const std::string& tag,
                                             const char* what) {
    io::JsonWriter json(out);
    json.begin_object()
        .value("line", static_cast<std::uint64_t>(line_no))
        .value("status", status);
    if (!tag.empty()) json.value("tag", tag);
    json.value("error", what).end_object();
    out << "\n";
    out.flush();
  };

  // Writes one report line and drops the job's record so an arbitrarily
  // long batch holds only in-flight jobs, not every finished one.
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  const auto emit_report = [&](JobId id) {
    const JobSnapshot snap = service.snapshot(id);
    if (snap.state == JobState::kFailed) ++failed;
    if (snap.state == JobState::kCancelled) ++cancelled;
    io::JsonWriter json(out);
    json.begin_object()
        .value("job_id", id)
        .value("line", static_cast<std::uint64_t>(line_of.at(id)))
        .value("status", to_string(snap.state));
    if (!snap.tag.empty()) json.value("tag", snap.tag);
    if (snap.state == JobState::kFailed) {
      json.value("error", snap.error);
    } else {
      snap.report.write_json(json, "report");
    }
    json.end_object();
    out << "\n";
    out.flush();
    service.release(id);
    line_of.erase(id);
  };

  std::string line;
  while (std::getline(jobs_in, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    BatchJob job;
    try {
      job = parse_batch_job(line);
    } catch (const std::exception& e) {
      ++invalid;
      emit_problem("invalid", "", e.what());
      continue;
    }
    bool cache_hit = false;
    std::shared_ptr<const QuboModel> model;
    try {
      model = service.cache().get_or_load(
          job.format + "#" + job.model_path,
          [&job] { return load_model_file(job.format, job.model_path); },
          &cache_hit);
    } catch (const std::exception& e) {
      ++load_failed;
      emit_problem("failed", job.spec.tag, e.what());
      continue;
    }
    const std::string tag = job.spec.tag;  // survives the move below
    try {
      job.spec.model = model;
      if (job.spec.stop.time_limit_seconds <= 0 &&
          job.spec.stop.max_batches == 0) {
        // A target alone may never be reached; keep every job bounded.
        job.spec.stop.time_limit_seconds = options.default_time_limit;
      }
      apply_time_governed_budgets(job.spec.solver, job.spec.stop,
                                  job.spec.options);
      job.spec.extras["model"] = model->describe();
      job.spec.extras["model_cache"] = cache_hit ? "hit" : "miss";
      job.spec.extras["model_cache_hits"] =
          std::to_string(service.cache().stats().hits);
      const JobId id = service.submit(std::move(job.spec));
      line_of.emplace(id, line_no);
      ++submitted;
    } catch (const std::exception& e) {
      ++invalid;  // unknown solver / bad option values
      emit_problem("invalid", tag, e.what());
    }
    // Keep streaming while reading: with a slow producer (stdin pipes)
    // reports must not wait for EOF.
    while (const std::optional<JobId> id = service.try_any_finished()) {
      emit_report(*id);
    }
  }

  // Drain the rest as they complete, out of order.
  while (const std::optional<JobId> id = service.wait_any_finished()) {
    emit_report(*id);
  }

  const ModelCache::Stats cache = service.cache().stats();
  err << "batch: " << submitted << " jobs on " << options.threads
      << " threads (" << invalid << " invalid, " << failed + load_failed
      << " failed, " << cancelled << " cancelled); model cache: "
      << cache.hits << " hits, " << cache.misses << " misses, "
      << cache.entries << " resident\n";
  return (invalid == 0 && failed == 0 && load_failed == 0 && cancelled == 0)
             ? 0
             : 1;
}

}  // namespace dabs::service
