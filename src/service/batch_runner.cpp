#include "service/batch_runner.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <istream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "io/json_reader.hpp"
#include "io/json_writer.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "problems/problem.hpp"
#include "service/job_journal.hpp"
#include "util/failpoint.hpp"

namespace dabs::service {

namespace {

/// Converts one "options" member to the string form SolverOptions parses.
std::string option_to_string(const std::string& key,
                             const io::JsonValue& value) {
  switch (value.kind()) {
    case io::JsonValue::Kind::kString:
      return value.as_string();
    case io::JsonValue::Kind::kBool:
      return value.as_bool() ? "true" : "false";
    case io::JsonValue::Kind::kNumber: {
      try {
        return std::to_string(value.as_int());
      } catch (const std::invalid_argument&) {
        // Non-integral: shortest round-trippable decimal.
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", value.as_double());
        return buf;
      }
    }
    default:
      throw std::invalid_argument("option '" + key +
                                  "' must be a string, number, or boolean");
  }
}

std::int64_t require_nonnegative(const char* key, std::int64_t v) {
  if (v < 0) {
    throw std::invalid_argument(std::string("'") + key +
                                "' must be non-negative");
  }
  return v;
}

}  // namespace

bool known_model_format(const std::string& format) {
  // Shim: the legacy formats are exactly the registry's file loaders.
  return ProblemRegistry::global().is_loader(format);
}

QuboModel load_model_file(const std::string& format,
                          const std::string& path) {
  if (!known_model_format(format)) {
    throw std::invalid_argument("unknown model format '" + format +
                                "' (expected qubo, gset, or qaplib)");
  }
  return ProblemRegistry::global().create(format + ":" + path)->encode();
}

BatchJob parse_batch_job(const std::string& json_line) {
  const io::JsonValue root = io::parse_json(json_line);
  if (!root.is_object()) {
    throw std::invalid_argument("job line must be a JSON object");
  }

  BatchJob job;
  bool have_model = false;
  bool have_format = false;
  bool have_problem = false;
  bool have_params = false;
  for (const auto& [key, value] : root.as_object()) {
    if (key == "model") {
      job.model_path = value.as_string();
      have_model = true;
    } else if (key == "format") {
      job.format = value.as_string();
      have_format = true;
    } else if (key == "problem") {
      job.problem = value.as_string();
      have_problem = true;
    } else if (key == "params") {
      for (const auto& [param_key, param_value] : value.as_object()) {
        job.params.set(param_key,
                       option_to_string(param_key, param_value));
      }
      have_params = true;
    } else if (key == "solver") {
      job.spec.solver = value.as_string();
    } else if (key == "options") {
      for (const auto& [opt_key, opt_value] : value.as_object()) {
        job.spec.options.set(opt_key, option_to_string(opt_key, opt_value));
      }
    } else if (key == "time_limit") {
      job.spec.stop.time_limit_seconds = value.as_double();
      if (job.spec.stop.time_limit_seconds < 0) {
        throw std::invalid_argument("'time_limit' must be non-negative");
      }
    } else if (key == "max_batches") {
      job.spec.stop.max_batches = static_cast<std::uint64_t>(
          require_nonnegative("max_batches", value.as_int()));
    } else if (key == "target") {
      job.spec.stop.target_energy = value.as_int();
    } else if (key == "deadline") {
      job.spec.deadline_seconds = value.as_double();
      if (job.spec.deadline_seconds <= 0) {
        throw std::invalid_argument("'deadline' must be positive");
      }
    } else if (key == "attempts") {
      const std::int64_t a = value.as_int();
      if (a < 1 || a > 100) {
        throw std::invalid_argument("'attempts' must be in [1, 100]");
      }
      job.spec.max_attempts = static_cast<std::uint32_t>(a);
      job.explicit_attempts = true;
    } else if (key == "seed") {
      job.spec.seed = static_cast<std::uint64_t>(
          require_nonnegative("seed", value.as_int()));
    } else if (key == "priority") {
      const std::int64_t p = value.as_int();
      if (p < std::numeric_limits<int>::min() ||
          p > std::numeric_limits<int>::max()) {
        throw std::invalid_argument("'priority' is out of range");
      }
      job.spec.priority = static_cast<int>(p);
    } else if (key == "tag") {
      job.spec.tag = value.as_string();
    } else if (key == "tick") {
      job.spec.tick_seconds = value.as_double();
    } else {
      throw std::invalid_argument("unknown job key '" + key + "'");
    }
  }
  if (have_model == have_problem) {
    throw std::invalid_argument(
        "job line requires exactly one of 'model' and 'problem'");
  }
  if (have_model && job.model_path.empty()) {
    throw std::invalid_argument("job line requires a non-empty 'model'");
  }
  if (have_problem && job.problem.empty()) {
    throw std::invalid_argument("job line requires a non-empty 'problem'");
  }
  if (have_format && have_problem) {
    throw std::invalid_argument(
        "'format' applies to 'model' jobs only (fold the loader into the "
        "problem spec, e.g. \"gset:G22.txt\")");
  }
  if (have_params && !have_problem) {
    throw std::invalid_argument("'params' requires a 'problem' job");
  }
  if (have_model && !known_model_format(job.format)) {
    throw std::invalid_argument("unknown model format '" + job.format +
                                "' (expected qubo, gset, or qaplib)");
  }
  return job;
}

std::string job_fingerprint(const BatchJob& job) {
  // FNV-1a over every identity field, a 0x1f unit separator after each so
  // field boundaries cannot alias ("ab"+"c" vs "a"+"bc").  Map-backed
  // fields iterate in key order, so the digest is independent of input
  // key order.  Computed on the *parsed* job, before batch-wide defaults
  // (time limit, attempts) are folded in — the same line fingerprints the
  // same across runs with different --attempts/--jobs settings, which is
  // what makes --resume match.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const std::string& field) {
    for (const unsigned char c : field) {
      h ^= c;
      h *= 1099511628211ull;
    }
    h ^= 0x1f;
    h *= 1099511628211ull;
  };
  if (job.problem.empty()) {
    mix("model:" + job.format + ":" + job.model_path);
  } else {
    mix("problem:" + job.problem);
  }
  for (const auto& [key, value] : job.params.values()) mix(key + "=" + value);
  mix(job.spec.solver);
  for (const auto& [key, value] : job.spec.options.values()) {
    mix(key + "=" + value);
  }
  mix(std::to_string(job.spec.stop.time_limit_seconds));
  mix(std::to_string(job.spec.stop.max_batches));
  mix(job.spec.stop.target_energy
          ? std::to_string(*job.spec.stop.target_energy)
          : std::string("-"));
  mix(job.spec.seed ? std::to_string(*job.spec.seed) : std::string("-"));
  mix(std::to_string(job.spec.priority));
  mix(job.spec.tag);
  mix(std::to_string(job.spec.deadline_seconds));
  mix(job.explicit_attempts ? std::to_string(job.spec.max_attempts)
                            : std::string("-"));
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

void apply_time_governed_budgets(const std::string& solver,
                                 const StopCondition& stop,
                                 SolverOptions& options) {
  // Only a wall-clock or work budget justifies lifting the baselines'
  // own iteration budgets: a target alone may never be reached, and
  // lifting on it would turn a terminating run into an unbounded one.
  if (stop.time_limit_seconds <= 0 && stop.max_batches == 0) return;
  const auto fill = [&](const char* name, const char* key, const char* v) {
    if (solver == name && !options.has(key)) options.set(key, v);
  };
  fill("sa", "restarts", "1000000000");
  fill("greedy-restart", "restarts", "1000000000");
  fill("tabu", "iterations", "1000000000000");
  fill("path-relinking", "relinks", "1000000000");
  fill("subqubo", "iterations", "1000000000");
}

int run_batch(std::istream& jobs_in, std::ostream& out, std::ostream& err,
              const BatchOptions& options) {
  const auto interrupted = [&options] {
    return options.interrupt != nullptr &&
           options.interrupt->load(std::memory_order_relaxed);
  };

  // The journal outlives the service: the on_started hook below runs on
  // worker threads, which the service dtor joins before `journal` dies.
  std::unique_ptr<JobJournal> journal;
  JobJournal::Replay replay;
  std::size_t journal_errors = 0;
  std::mutex journal_mu;  // guards journal_errors + the err stream below
  if (!options.journal_path.empty()) {
    if (options.resume) {
      replay = JobJournal::replay(options.journal_path);
      for (const std::string& warning : replay.warnings) {
        err << "batch: " << warning << "\n";
      }
      if (replay.skipped > replay.warnings.size()) {
        err << "batch: ... and " << replay.skipped - replay.warnings.size()
            << " more unreadable journal lines\n";
      }
    }
    try {
      journal = std::make_unique<JobJournal>(options.journal_path);
    } catch (const std::exception& e) {
      // No journal, no durability — but the batch itself can still run;
      // the operator sees the warning and the summary's error count.
      err << "batch: " << e.what() << " (continuing without journal)\n";
      ++journal_errors;
    }
  } else if (options.resume) {
    err << "batch: --resume requires a journal path\n";
    return 1;
  }
  // Journal appends must never kill the batch: log once per incident,
  // count, keep solving.  Thread-safe — the started hook calls this from
  // worker threads while the driving thread journals submits/outcomes.
  const auto journal_append = [&](const JournalRecord& record) {
    if (!journal) return;
    try {
      journal->append(record);
    } catch (const std::exception& e) {
      {
        std::lock_guard lock(journal_mu);
        if (journal_errors == 0) {
          err << "batch: journal append failed: " << e.what()
              << " (continuing without durability)\n";
        }
        ++journal_errors;
      }
      static obs::LogRateLimit gate(5.0);
      std::uint64_t suppressed = 0;
      if (gate.allow(&suppressed)) {
        obs::log(obs::LogLevel::kWarn, "journal", "append failed",
                 {{"error", e.what()}, {"suppressed", suppressed}});
      }
    }
  };

  SolverService::Config config;
  config.threads = options.threads;
  config.max_events_per_job = options.max_events_per_job;
  config.cache_bytes = options.cache_bytes;
  config.max_queue_depth = options.max_queue_depth;
  config.on_started = [&journal_append](JobId, const JobSpec& spec) {
    const auto it = spec.extras.find("fingerprint");
    if (it == spec.extras.end()) return;
    JournalRecord record;
    record.event = JournalEvent::kStarted;
    record.fingerprint = it->second;
    record.tag = spec.tag;
    journal_append(record);
  };
  SolverService service(std::move(config));

  /// In-flight bookkeeping, pruned on emit.  Problem-keyed jobs keep their
  /// Problem (decode/verify happens when the job finishes) and the cached
  /// model (the verify energy is re-evaluated, not taken from the solver).
  struct PendingJob {
    std::size_t line = 0;
    std::shared_ptr<const Problem> problem;
    std::shared_ptr<const QuboModel> model;
    std::string spec_key;  // problems_by_spec entry to prune on emit
    std::string fingerprint;
  };
  std::map<JobId, PendingJob> in_flight;
  // Spec-level problem dedupe: duplicated "problem"+"params" lines share
  // one Problem instance (one generator run / file read), weakly held so
  // a spec whose jobs all finished frees its instance data — only the
  // LRU-bounded ModelCache retains big state across the whole batch.
  std::map<std::string, std::weak_ptr<const Problem>> problems_by_spec;
  // Duplicate-line disambiguation: the N-th parse of an identical job
  // definition gets fingerprint "<base>#N", counted in input order —
  // stable across runs of the same file, which --resume relies on.
  std::map<std::string, std::uint64_t> fingerprint_occurrences;
  // With SIGPIPE ignored process-wide, a consumer that hung up (head,
  // a dead pipe) surfaces as stream failure after a flush.  The batch
  // then stops intake and cancels — but keeps journaling terminal
  // records, so a later --resume still sees the truth.
  bool output_broken = false;
  const auto check_output = [&out, &output_broken] {
    if (!output_broken && !out) output_broken = true;
  };
  std::size_t line_no = 0;
  std::size_t submitted = 0;
  std::size_t invalid = 0;
  std::size_t load_failed = 0;
  std::size_t resumed_skipped = 0;
  std::size_t rejected = 0;
  std::uint64_t retries_attempted = 0;
  std::uint64_t retries_recovered = 0;
  // Every problem line still yields an output line so callers can join
  // inputs to outcomes; the batch keeps going either way.  "invalid"
  // means fix the input (schema violation, unknown solver/option);
  // "failed" means the environment broke (model unreadable) — retryable.
  const auto emit_problem = [&out, &line_no](const char* status,
                                             const std::string& tag,
                                             const std::string& what,
                                             const std::string& fingerprint =
                                                 {},
                                             std::uint32_t attempts = 0) {
    io::JsonWriter json(out);
    json.begin_object()
        .value("line", static_cast<std::uint64_t>(line_no))
        .value("status", status);
    if (!tag.empty()) json.value("tag", tag);
    if (!fingerprint.empty()) json.value("fingerprint", fingerprint);
    if (attempts != 0) json.value("attempts", attempts);
    json.value("error", what).end_object();
    out << "\n";
    out.flush();
  };

  // Writes one report line, journals the terminal event, and drops the
  // job's record so an arbitrarily long batch holds only in-flight jobs.
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  obs::TraceCollector trace;  // only populated when --trace is set
  const auto emit_report = [&](JobId id) {
    const PendingJob& pending = in_flight.at(id);
    JobSnapshot snap = service.snapshot(id);
    if (snap.state == JobState::kFailed) ++failed;
    if (snap.state == JobState::kCancelled) ++cancelled;
    if (snap.state == JobState::kRejected) ++rejected;
    std::uint32_t attempts = 0;
    {
      const auto it = snap.report.extras.find("attempts");
      if (it != snap.report.extras.end()) {
        attempts =
            static_cast<std::uint32_t>(std::strtoul(it->second.c_str(),
                                                    nullptr, 10));
      }
    }
    if (attempts > 1) {
      retries_attempted += attempts - 1;
      if (snap.state == JobState::kDone) ++retries_recovered;
    }
    // Problem-keyed jobs: decode the solved bits into domain terms and
    // verify them against the cached model (cancelled-while-queued jobs
    // carry an empty solution — nothing to decode).  A deferred loader
    // whose model came from the cache may read its file here for the
    // first time; if that file vanished mid-batch the job still solved —
    // report the run, flag the verification, never abort the batch.
    if (pending.problem &&
        snap.report.best_solution.size() == pending.model->size()) {
      try {
        const DomainSolution sol =
            pending.problem->decode(snap.report.best_solution);
        const VerifyResult verdict = pending.problem->verify(
            snap.report.best_solution,
            pending.model->energy(snap.report.best_solution));
        annotate_extras(*pending.problem, sol, verdict, snap.report.extras);
      } catch (const std::exception& e) {
        snap.report.extras["problem"] = pending.problem->cache_key();
        snap.report.extras["verified"] = "false";
        snap.report.extras["verify_message"] = e.what();
      }
    }
    io::JsonWriter json(out);
    json.begin_object()
        .value("job_id", id)
        .value("line", static_cast<std::uint64_t>(pending.line))
        .value("status", to_string(snap.state));
    if (!snap.tag.empty()) json.value("tag", snap.tag);
    if (!pending.fingerprint.empty()) {
      json.value("fingerprint", pending.fingerprint);
    }
    if (snap.state == JobState::kFailed ||
        snap.state == JobState::kRejected) {
      json.value("error", snap.error);
      if (attempts != 0) json.value("attempts", attempts);
    } else {
      snap.report.write_json(json, "report");
    }
    json.end_object();
    out << "\n";
    out.flush();
    check_output();
    JournalRecord record;
    record.fingerprint = pending.fingerprint;
    record.line = pending.line;
    record.tag = snap.tag;
    record.attempt = attempts;
    switch (snap.state) {
      case JobState::kDone:
        record.event = JournalEvent::kDone;
        break;
      case JobState::kFailed:
        record.event = JournalEvent::kFailed;
        record.detail = snap.error;
        break;
      case JobState::kRejected:
        record.event = JournalEvent::kRejected;
        record.detail = snap.error;
        break;
      default:
        record.event = JournalEvent::kCancelled;
        record.detail =
            snap.report.extras.count("deadline_exceeded") != 0
                ? "deadline"
                : "cancelled";
        break;
    }
    if (!record.fingerprint.empty()) journal_append(record);
    if (!options.trace_path.empty()) {
      obs::append_job_trace(trace, job_trace(snap));
    }
    service.release(id);
    const std::string spec_key = pending.spec_key;
    in_flight.erase(id);  // invalidates `pending`
    // Drop the spec entry once no in-flight job holds its problem, so a
    // long batch of distinct specs does not accumulate stale weak_ptrs.
    if (!spec_key.empty()) {
      const auto it = problems_by_spec.find(spec_key);
      if (it != problems_by_spec.end() && it->second.expired()) {
        problems_by_spec.erase(it);
      }
    }
  };

  bool was_interrupted = false;
  std::string line;
  while (std::getline(jobs_in, line)) {
    ++line_no;
    if (interrupted()) {
      was_interrupted = true;
      break;
    }
    check_output();
    if (output_broken) break;  // nobody is reading; stop taking work
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    BatchJob job;
    try {
      job = parse_batch_job(line);
    } catch (const std::exception& e) {
      ++invalid;
      emit_problem("invalid", "", e.what());
      continue;
    }
    // Fingerprint the parsed definition and disambiguate duplicates by
    // input-order occurrence — both deterministic for a fixed jobs file,
    // so a resumed run assigns every line the fingerprint it had before
    // the crash.
    std::string fingerprint = job_fingerprint(job);
    const std::uint64_t occurrence = ++fingerprint_occurrences[fingerprint];
    if (occurrence > 1) {
      fingerprint += "#" + std::to_string(occurrence);
    }
    if (options.resume && replay.terminal(fingerprint)) {
      ++resumed_skipped;
      continue;
    }
    // Write-ahead: the submit record is durable before any work happens,
    // so a crash anywhere after this point leaves a journal that names
    // the job (its absence of a terminal record re-enqueues it).
    {
      JournalRecord record;
      record.event = JournalEvent::kSubmitted;
      record.fingerprint = fingerprint;
      record.line = line_no;
      record.tag = job.spec.tag;
      journal_append(record);
    }
    const auto journal_terminal = [&](JournalEvent event,
                                      const std::string& detail,
                                      std::uint32_t attempt) {
      JournalRecord record;
      record.event = event;
      record.fingerprint = fingerprint;
      record.line = line_no;
      record.tag = job.spec.tag;
      record.attempt = attempt;
      record.detail = detail;
      journal_append(record);
    };
    // Problem jobs resolve their registry spec first; a bad spec (unknown
    // name, typo'd param) is the caller's input to fix.
    std::shared_ptr<const Problem> problem;
    std::string cache_key;
    std::string spec_key;
    if (!job.problem.empty()) {
      spec_key = job.problem;
      for (const auto& [k, v] : job.params.values()) {
        spec_key += '\x1f' + k + '=' + v;
      }
      problem = problems_by_spec[spec_key].lock();
      if (!problem) {
        try {
          problem =
              ProblemRegistry::global().create(job.problem, job.params);
        } catch (const std::exception& e) {
          ++invalid;
          journal_terminal(JournalEvent::kFailed,
                           std::string("invalid: ") + e.what(), 0);
          emit_problem("invalid", job.spec.tag, e.what(), fingerprint);
          continue;
        }
        problems_by_spec[spec_key] = problem;
      }
      cache_key = "problem#" + problem->cache_key();
    } else {
      cache_key = job.format + "#" + job.model_path;
    }
    // Model load with retry: unreadable files (and injected load faults)
    // are the transient-environment failure mode the retry policy exists
    // for.  Schema problems (unknown format) stay invalid — no retry.
    const std::uint32_t attempts_allowed =
        job.explicit_attempts ? job.spec.max_attempts : options.max_attempts;
    bool cache_hit = false;
    std::shared_ptr<const QuboModel> model;
    std::uint32_t load_attempt = 0;
    std::string load_error;
    while (!model) {
      ++load_attempt;
      bool retryable = false;
      try {
        model = service.cache().get_or_load(
            cache_key,
            [&job, &problem] {
              fail::point("batch.model_load");
              return problem ? problem->encode()
                             : load_model_file(job.format, job.model_path);
            },
            &cache_hit);
        break;
      } catch (const std::bad_alloc&) {
        load_error = "std::bad_alloc";
        retryable = true;
      } catch (const std::invalid_argument& e) {
        load_error = e.what();
      } catch (const std::exception& e) {
        load_error = e.what();
        // File IO can blip (NFS, transient unlink/replace); generator
        // (encode) failures only retry when explicitly marked.
        retryable = fail::is_retryable_message(load_error) ||
                    !job.model_path.empty();
      }
      if (!retryable || load_attempt >= attempts_allowed || interrupted()) {
        break;
      }
      ++retries_attempted;
      const double backoff_seconds = retry_backoff(
          options.retry_backoff_seconds, options.retry_backoff_max_seconds,
          load_attempt, std::hash<std::string>{}(fingerprint));
      // Sleep in small slices so an interrupt cuts the wait short.
      const auto wake = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(backoff_seconds));
      while (std::chrono::steady_clock::now() < wake && !interrupted()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    if (!model) {
      ++load_failed;
      journal_terminal(JournalEvent::kFailed, load_error, load_attempt);
      emit_problem("failed", job.spec.tag, load_error, fingerprint,
                   load_attempt);
      continue;
    }
    if (load_attempt > 1) ++retries_recovered;
    const std::string tag = job.spec.tag;  // survives the move below
    try {
      job.spec.model = model;
      if (job.spec.stop.time_limit_seconds <= 0 &&
          job.spec.stop.max_batches == 0) {
        // A target alone may never be reached; keep every job bounded.
        job.spec.stop.time_limit_seconds = options.default_time_limit;
      }
      apply_time_governed_budgets(job.spec.solver, job.spec.stop,
                                  job.spec.options);
      if (!job.explicit_attempts) {
        job.spec.max_attempts = options.max_attempts;
      }
      job.spec.retry_backoff_seconds = options.retry_backoff_seconds;
      job.spec.retry_backoff_max_seconds =
          options.retry_backoff_max_seconds;
      job.spec.extras["model"] = model->describe();
      job.spec.extras["model_cache"] = cache_hit ? "hit" : "miss";
      job.spec.extras["model_cache_hits"] =
          std::to_string(service.cache().stats().hits);
      job.spec.extras["fingerprint"] = fingerprint;
      const JobId id = service.submit(std::move(job.spec));
      in_flight.emplace(
          id, PendingJob{line_no, problem, model, spec_key, fingerprint});
      ++submitted;
    } catch (const std::exception& e) {
      ++invalid;  // unknown solver / bad option values
      journal_terminal(JournalEvent::kFailed,
                       std::string("invalid: ") + e.what(), 0);
      emit_problem("invalid", tag, e.what(), fingerprint);
    }
    // Keep streaming while reading: with a slow producer (stdin pipes)
    // reports must not wait for EOF.
    while (const std::optional<JobId> id = service.try_any_finished()) {
      emit_report(*id);
    }
  }
  if (interrupted()) was_interrupted = true;
  if (was_interrupted || output_broken) {
    // Stop intake, cancel everything outstanding; the drain below still
    // emits (and journals) one line per submitted job, so nothing earned
    // is lost and the journal re-enqueues the cancellations on --resume.
    // (With a broken output stream the emits go nowhere, but the journal
    // records are the part that must survive.)
    service.cancel_all();
  }

  // Drain the rest as they complete, out of order.  With an interrupt
  // flag armed, poll so a signal arriving mid-drain cancels the stragglers
  // instead of waiting out their full time limits.
  while (!in_flight.empty()) {
    std::optional<JobId> id;
    if (options.interrupt != nullptr) {
      id = service.wait_any_finished_for(0.05);
      if (!id) {
        if (interrupted() && !was_interrupted) {
          was_interrupted = true;
          service.cancel_all();
        }
        continue;
      }
    } else {
      id = service.wait_any_finished();
      if (!id) break;
    }
    emit_report(*id);
  }

  if (!options.trace_path.empty()) {
    if (trace.write_file(options.trace_path)) {
      err << "batch: wrote trace to " << options.trace_path << "\n";
    } else {
      err << "batch: failed to write trace to " << options.trace_path
          << "\n";
    }
  }

  const ModelCache::Stats cache = service.cache().stats();
  err << "batch: " << submitted << " jobs on " << options.threads
      << " threads (" << invalid << " invalid, " << failed + load_failed
      << " failed, " << cancelled << " cancelled, " << rejected
      << " rejected); retries: " << retries_attempted << " attempted, "
      << retries_recovered << " recovered; model cache: " << cache.hits
      << " hits, " << cache.misses << " misses, " << cache.entries
      << " resident";
  if (journal || journal_errors != 0) {
    err << "; journal: " << (journal ? journal->appended() : 0)
        << " records, " << journal_errors << " append errors";
  }
  if (options.resume) {
    err << "; resumed: " << resumed_skipped << " already terminal";
  }
  if (was_interrupted) err << "; interrupted";
  if (output_broken) err << "; report stream broke (consumer hung up)";
  err << "\n";
  if (was_interrupted) return 130;
  return (invalid == 0 && failed == 0 && load_failed == 0 &&
          cancelled == 0 && rejected == 0 && !output_broken)
             ? 0
             : 1;
}

}  // namespace dabs::service
