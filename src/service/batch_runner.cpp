#include "service/batch_runner.hpp"

#include <cstdio>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "io/json_reader.hpp"
#include "io/json_writer.hpp"
#include "problems/problem.hpp"

namespace dabs::service {

namespace {

/// Converts one "options" member to the string form SolverOptions parses.
std::string option_to_string(const std::string& key,
                             const io::JsonValue& value) {
  switch (value.kind()) {
    case io::JsonValue::Kind::kString:
      return value.as_string();
    case io::JsonValue::Kind::kBool:
      return value.as_bool() ? "true" : "false";
    case io::JsonValue::Kind::kNumber: {
      try {
        return std::to_string(value.as_int());
      } catch (const std::invalid_argument&) {
        // Non-integral: shortest round-trippable decimal.
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", value.as_double());
        return buf;
      }
    }
    default:
      throw std::invalid_argument("option '" + key +
                                  "' must be a string, number, or boolean");
  }
}

std::int64_t require_nonnegative(const char* key, std::int64_t v) {
  if (v < 0) {
    throw std::invalid_argument(std::string("'") + key +
                                "' must be non-negative");
  }
  return v;
}

}  // namespace

bool known_model_format(const std::string& format) {
  // Shim: the legacy formats are exactly the registry's file loaders.
  return ProblemRegistry::global().is_loader(format);
}

QuboModel load_model_file(const std::string& format,
                          const std::string& path) {
  if (!known_model_format(format)) {
    throw std::invalid_argument("unknown model format '" + format +
                                "' (expected qubo, gset, or qaplib)");
  }
  return ProblemRegistry::global().create(format + ":" + path)->encode();
}

BatchJob parse_batch_job(const std::string& json_line) {
  const io::JsonValue root = io::parse_json(json_line);
  if (!root.is_object()) {
    throw std::invalid_argument("job line must be a JSON object");
  }

  BatchJob job;
  bool have_model = false;
  bool have_format = false;
  bool have_problem = false;
  bool have_params = false;
  for (const auto& [key, value] : root.as_object()) {
    if (key == "model") {
      job.model_path = value.as_string();
      have_model = true;
    } else if (key == "format") {
      job.format = value.as_string();
      have_format = true;
    } else if (key == "problem") {
      job.problem = value.as_string();
      have_problem = true;
    } else if (key == "params") {
      for (const auto& [param_key, param_value] : value.as_object()) {
        job.params.set(param_key,
                       option_to_string(param_key, param_value));
      }
      have_params = true;
    } else if (key == "solver") {
      job.spec.solver = value.as_string();
    } else if (key == "options") {
      for (const auto& [opt_key, opt_value] : value.as_object()) {
        job.spec.options.set(opt_key, option_to_string(opt_key, opt_value));
      }
    } else if (key == "time_limit") {
      job.spec.stop.time_limit_seconds = value.as_double();
      if (job.spec.stop.time_limit_seconds < 0) {
        throw std::invalid_argument("'time_limit' must be non-negative");
      }
    } else if (key == "max_batches") {
      job.spec.stop.max_batches = static_cast<std::uint64_t>(
          require_nonnegative("max_batches", value.as_int()));
    } else if (key == "target") {
      job.spec.stop.target_energy = value.as_int();
    } else if (key == "seed") {
      job.spec.seed = static_cast<std::uint64_t>(
          require_nonnegative("seed", value.as_int()));
    } else if (key == "priority") {
      const std::int64_t p = value.as_int();
      if (p < std::numeric_limits<int>::min() ||
          p > std::numeric_limits<int>::max()) {
        throw std::invalid_argument("'priority' is out of range");
      }
      job.spec.priority = static_cast<int>(p);
    } else if (key == "tag") {
      job.spec.tag = value.as_string();
    } else if (key == "tick") {
      job.spec.tick_seconds = value.as_double();
    } else {
      throw std::invalid_argument("unknown job key '" + key + "'");
    }
  }
  if (have_model == have_problem) {
    throw std::invalid_argument(
        "job line requires exactly one of 'model' and 'problem'");
  }
  if (have_model && job.model_path.empty()) {
    throw std::invalid_argument("job line requires a non-empty 'model'");
  }
  if (have_problem && job.problem.empty()) {
    throw std::invalid_argument("job line requires a non-empty 'problem'");
  }
  if (have_format && have_problem) {
    throw std::invalid_argument(
        "'format' applies to 'model' jobs only (fold the loader into the "
        "problem spec, e.g. \"gset:G22.txt\")");
  }
  if (have_params && !have_problem) {
    throw std::invalid_argument("'params' requires a 'problem' job");
  }
  if (have_model && !known_model_format(job.format)) {
    throw std::invalid_argument("unknown model format '" + job.format +
                                "' (expected qubo, gset, or qaplib)");
  }
  return job;
}

void apply_time_governed_budgets(const std::string& solver,
                                 const StopCondition& stop,
                                 SolverOptions& options) {
  // Only a wall-clock or work budget justifies lifting the baselines'
  // own iteration budgets: a target alone may never be reached, and
  // lifting on it would turn a terminating run into an unbounded one.
  if (stop.time_limit_seconds <= 0 && stop.max_batches == 0) return;
  const auto fill = [&](const char* name, const char* key, const char* v) {
    if (solver == name && !options.has(key)) options.set(key, v);
  };
  fill("sa", "restarts", "1000000000");
  fill("greedy-restart", "restarts", "1000000000");
  fill("tabu", "iterations", "1000000000000");
  fill("path-relinking", "relinks", "1000000000");
  fill("subqubo", "iterations", "1000000000");
}

int run_batch(std::istream& jobs_in, std::ostream& out, std::ostream& err,
              const BatchOptions& options) {
  SolverService service({options.threads, options.max_events_per_job,
                         options.cache_bytes});

  /// In-flight bookkeeping, pruned on emit.  Problem-keyed jobs keep their
  /// Problem (decode/verify happens when the job finishes) and the cached
  /// model (the verify energy is re-evaluated, not taken from the solver).
  struct PendingJob {
    std::size_t line = 0;
    std::shared_ptr<const Problem> problem;
    std::shared_ptr<const QuboModel> model;
    std::string spec_key;  // problems_by_spec entry to prune on emit
  };
  std::map<JobId, PendingJob> in_flight;
  // Spec-level problem dedupe: duplicated "problem"+"params" lines share
  // one Problem instance (one generator run / file read), weakly held so
  // a spec whose jobs all finished frees its instance data — only the
  // LRU-bounded ModelCache retains big state across the whole batch.
  std::map<std::string, std::weak_ptr<const Problem>> problems_by_spec;
  std::size_t line_no = 0;
  std::size_t submitted = 0;
  std::size_t invalid = 0;
  std::size_t load_failed = 0;
  // Every problem line still yields an output line so callers can join
  // inputs to outcomes; the batch keeps going either way.  "invalid"
  // means fix the input (schema violation, unknown solver/option);
  // "failed" means the environment broke (model unreadable) — retryable.
  const auto emit_problem = [&out, &line_no](const char* status,
                                             const std::string& tag,
                                             const char* what) {
    io::JsonWriter json(out);
    json.begin_object()
        .value("line", static_cast<std::uint64_t>(line_no))
        .value("status", status);
    if (!tag.empty()) json.value("tag", tag);
    json.value("error", what).end_object();
    out << "\n";
    out.flush();
  };

  // Writes one report line and drops the job's record so an arbitrarily
  // long batch holds only in-flight jobs, not every finished one.
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  const auto emit_report = [&](JobId id) {
    const PendingJob& pending = in_flight.at(id);
    JobSnapshot snap = service.snapshot(id);
    if (snap.state == JobState::kFailed) ++failed;
    if (snap.state == JobState::kCancelled) ++cancelled;
    // Problem-keyed jobs: decode the solved bits into domain terms and
    // verify them against the cached model (cancelled-while-queued jobs
    // carry an empty solution — nothing to decode).  A deferred loader
    // whose model came from the cache may read its file here for the
    // first time; if that file vanished mid-batch the job still solved —
    // report the run, flag the verification, never abort the batch.
    if (pending.problem &&
        snap.report.best_solution.size() == pending.model->size()) {
      try {
        const DomainSolution sol =
            pending.problem->decode(snap.report.best_solution);
        const VerifyResult verdict = pending.problem->verify(
            snap.report.best_solution,
            pending.model->energy(snap.report.best_solution));
        annotate_extras(*pending.problem, sol, verdict, snap.report.extras);
      } catch (const std::exception& e) {
        snap.report.extras["problem"] = pending.problem->cache_key();
        snap.report.extras["verified"] = "false";
        snap.report.extras["verify_message"] = e.what();
      }
    }
    io::JsonWriter json(out);
    json.begin_object()
        .value("job_id", id)
        .value("line", static_cast<std::uint64_t>(pending.line))
        .value("status", to_string(snap.state));
    if (!snap.tag.empty()) json.value("tag", snap.tag);
    if (snap.state == JobState::kFailed) {
      json.value("error", snap.error);
    } else {
      snap.report.write_json(json, "report");
    }
    json.end_object();
    out << "\n";
    out.flush();
    service.release(id);
    const std::string spec_key = pending.spec_key;
    in_flight.erase(id);  // invalidates `pending`
    // Drop the spec entry once no in-flight job holds its problem, so a
    // long batch of distinct specs does not accumulate stale weak_ptrs.
    if (!spec_key.empty()) {
      const auto it = problems_by_spec.find(spec_key);
      if (it != problems_by_spec.end() && it->second.expired()) {
        problems_by_spec.erase(it);
      }
    }
  };

  std::string line;
  while (std::getline(jobs_in, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    BatchJob job;
    try {
      job = parse_batch_job(line);
    } catch (const std::exception& e) {
      ++invalid;
      emit_problem("invalid", "", e.what());
      continue;
    }
    // Problem jobs resolve their registry spec first; a bad spec (unknown
    // name, typo'd param) is the caller's input to fix.
    std::shared_ptr<const Problem> problem;
    std::string cache_key;
    std::string spec_key;
    if (!job.problem.empty()) {
      spec_key = job.problem;
      for (const auto& [k, v] : job.params.values()) {
        spec_key += '\x1f' + k + '=' + v;
      }
      problem = problems_by_spec[spec_key].lock();
      if (!problem) {
        try {
          problem =
              ProblemRegistry::global().create(job.problem, job.params);
        } catch (const std::exception& e) {
          ++invalid;
          emit_problem("invalid", job.spec.tag, e.what());
          continue;
        }
        problems_by_spec[spec_key] = problem;
      }
      cache_key = "problem#" + problem->cache_key();
    } else {
      cache_key = job.format + "#" + job.model_path;
    }
    bool cache_hit = false;
    std::shared_ptr<const QuboModel> model;
    try {
      model = service.cache().get_or_load(
          cache_key,
          [&job, &problem] {
            return problem ? problem->encode()
                           : load_model_file(job.format, job.model_path);
          },
          &cache_hit);
    } catch (const std::exception& e) {
      ++load_failed;
      emit_problem("failed", job.spec.tag, e.what());
      continue;
    }
    const std::string tag = job.spec.tag;  // survives the move below
    try {
      job.spec.model = model;
      if (job.spec.stop.time_limit_seconds <= 0 &&
          job.spec.stop.max_batches == 0) {
        // A target alone may never be reached; keep every job bounded.
        job.spec.stop.time_limit_seconds = options.default_time_limit;
      }
      apply_time_governed_budgets(job.spec.solver, job.spec.stop,
                                  job.spec.options);
      job.spec.extras["model"] = model->describe();
      job.spec.extras["model_cache"] = cache_hit ? "hit" : "miss";
      job.spec.extras["model_cache_hits"] =
          std::to_string(service.cache().stats().hits);
      const JobId id = service.submit(std::move(job.spec));
      in_flight.emplace(id, PendingJob{line_no, problem, model, spec_key});
      ++submitted;
    } catch (const std::exception& e) {
      ++invalid;  // unknown solver / bad option values
      emit_problem("invalid", tag, e.what());
    }
    // Keep streaming while reading: with a slow producer (stdin pipes)
    // reports must not wait for EOF.
    while (const std::optional<JobId> id = service.try_any_finished()) {
      emit_report(*id);
    }
  }

  // Drain the rest as they complete, out of order.
  while (const std::optional<JobId> id = service.wait_any_finished()) {
    emit_report(*id);
  }

  const ModelCache::Stats cache = service.cache().stats();
  err << "batch: " << submitted << " jobs on " << options.threads
      << " threads (" << invalid << " invalid, " << failed + load_failed
      << " failed, " << cancelled << " cancelled); model cache: "
      << cache.hits << " hits, " << cache.misses << " misses, "
      << cache.entries << " resident\n";
  return (invalid == 0 && failed == 0 && load_failed == 0 && cancelled == 0)
             ? 0
             : 1;
}

}  // namespace dabs::service
