#include "service/solver_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dabs::service {

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kFailed:
      return "failed";
  }
  return "?";
}

/// Internal per-job record.  Guarded by SolverService::mu_ except for
/// `solver` and `token`, which the owning worker uses outside the lock
/// (solver is never touched elsewhere once running; StopToken is
/// thread-safe by design).
struct SolverService::Job {
  JobId id = 0;
  JobSpec spec;
  std::unique_ptr<Solver> solver;
  StopToken token;
  JobState state = JobState::kQueued;
  SolveReport report;
  std::string error;
  // Bounded ring: newest events overwrite the oldest once full.
  std::vector<JobEvent> events;
  std::size_t ring_next = 0;
  std::uint64_t events_dropped = 0;
};

/// The service-owned ProgressObserver: forwards a running job's new-best /
/// tick callbacks into its bounded event log.  Lives on the worker's stack
/// for the duration of one solve() call.
class SolverService::EventLogObserver final : public ProgressObserver {
 public:
  EventLogObserver(SolverService& service, Job& job)
      : service_(service), job_(job) {}

  void on_new_best(const ProgressEvent& event) override {
    append({JobEvent::Kind::kNewBest, event.elapsed_seconds,
            event.best_energy, event.work});
  }
  void on_tick(const ProgressEvent& event) override {
    append({JobEvent::Kind::kTick, event.elapsed_seconds, event.best_energy,
            event.work});
  }

 private:
  void append(const JobEvent& event) {
    const std::size_t cap = service_.config_.max_events_per_job;
    if (cap == 0) return;
    std::lock_guard lock(service_.mu_);
    if (job_.events.size() < cap) {
      job_.events.push_back(event);
    } else {
      job_.events[job_.ring_next] = event;
      job_.ring_next = (job_.ring_next + 1) % cap;
      ++job_.events_dropped;
    }
  }

  SolverService& service_;
  Job& job_;
};

SolverService::SolverService() : SolverService(Config{}) {}

SolverService::SolverService(Config config)
    : config_(config), cache_(config.cache_bytes), pool_(config.threads) {}

SolverService::~SolverService() {
  {
    std::lock_guard lock(mu_);
    shutting_down_ = true;
  }
  cancel_all();
  // Queued drain tasks still run (finding nothing pending); running jobs
  // unwind within one iteration of their solver loop.
  pool_.wait_idle();
}

JobId SolverService::submit(JobSpec spec) {
  if (!spec.model) {
    throw std::invalid_argument("JobSpec carries no model");
  }
  // Build the solver up front so unknown names / bad options fail at
  // submit time with the registry's message, not inside a worker.
  std::unique_ptr<Solver> solver =
      SolverRegistry::global().create(spec.solver, spec.options);

  JobId id = 0;
  {
    std::lock_guard lock(mu_);
    if (shutting_down_) {
      throw std::runtime_error("SolverService is shutting down");
    }
    id = next_id_++;
    auto job = std::make_unique<Job>();
    job->id = id;
    job->spec = std::move(spec);
    job->solver = std::move(solver);
    pending_.emplace(PendingKey{job->spec.priority, id}, id);
    jobs_.emplace(id, std::move(job));
    ++unclaimed_;
  }
  // One drain task per submission: each pops whichever pending job is
  // highest-priority at the time it runs, so a plain FIFO pool yields
  // priority order without a bespoke scheduler.
  pool_.submit([this] { run_one(); });
  return id;
}

void SolverService::run_one() {
  Job* job = nullptr;
  {
    std::lock_guard lock(mu_);
    if (pending_.empty()) return;  // its job was cancelled while queued
    const auto it = pending_.begin();
    job = jobs_.at(it->second).get();
    pending_.erase(it);
    job->state = JobState::kRunning;
    ++running_;
  }

  EventLogObserver observer(*this, *job);
  SolveReport report;
  std::string error;
  bool failed = false;
  try {
    report = job->solver->solve(request_for(*job, &observer));
  } catch (const std::exception& e) {
    failed = true;
    error = e.what();
  } catch (...) {
    failed = true;
    error = "unknown exception";
  }

  std::lock_guard lock(mu_);
  --running_;
  if (failed) {
    job->error = std::move(error);
    finalize_locked(*job, JobState::kFailed);
  } else {
    const JobState state =
        report.cancelled ? JobState::kCancelled : JobState::kDone;
    job->report = std::move(report);
    finalize_locked(*job, state);
  }
}

SolveRequest SolverService::request_for(const Job& job,
                                        ProgressObserver* observer) {
  SolveRequest req;
  req.model = job.spec.model.get();
  req.stop = job.spec.stop;
  req.seed = job.spec.seed;
  req.stop_token = job.token;
  req.observer = observer;
  req.tick_seconds = job.spec.tick_seconds;
  return req;
}

void SolverService::finalize_locked(Job& job, JobState state) {
  job.state = state;
  if (job.report.solver.empty()) job.report.solver = job.spec.solver;
  // Caller annotations win over same-named solver extras: the caller set
  // them deliberately per job.
  for (const auto& [k, v] : job.spec.extras) job.report.extras[k] = v;
  job.report.extras["job_id"] = std::to_string(job.id);
  if (!job.spec.tag.empty()) job.report.extras["tag"] = job.spec.tag;
  finished_.push_back(job.id);
  cv_.notify_all();
}

JobState SolverService::state(JobId id) const {
  std::lock_guard lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("unknown job id");
  return it->second->state;
}

JobSnapshot SolverService::snapshot(JobId id) const {
  std::lock_guard lock(mu_);
  return snapshot_locked(id);
}

JobSnapshot SolverService::snapshot_locked(JobId id) const {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("unknown job id");
  const Job& job = *it->second;
  JobSnapshot snap;
  snap.id = job.id;
  snap.state = job.state;
  snap.tag = job.spec.tag;
  snap.priority = job.spec.priority;
  snap.report = job.report;
  snap.error = job.error;
  snap.events_dropped = job.events_dropped;
  // Un-rotate the ring so events come out oldest-first.
  snap.events.reserve(job.events.size());
  for (std::size_t i = 0; i < job.events.size(); ++i) {
    snap.events.push_back(
        job.events[(job.ring_next + i) % job.events.size()]);
  }
  return snap;
}

JobSnapshot SolverService::wait(JobId id) {
  std::unique_lock lock(mu_);
  if (jobs_.find(id) == jobs_.end()) {
    throw std::out_of_range("unknown job id");
  }
  // Re-find per evaluation: a concurrent release() may erase the record.
  cv_.wait(lock, [this, id] {
    const auto it = jobs_.find(id);
    return it == jobs_.end() || is_terminal(it->second->state);
  });
  return snapshot_locked(id);  // throws if the job was released meanwhile
}

void SolverService::wait_all() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return pending_.empty() && running_ == 0; });
}

std::optional<JobId> SolverService::wait_any_finished() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return !finished_.empty() || unclaimed_ == 0; });
  if (finished_.empty()) return std::nullopt;
  const JobId id = finished_.front();
  finished_.pop_front();
  --unclaimed_;
  return id;
}

std::optional<JobId> SolverService::try_any_finished() {
  std::lock_guard lock(mu_);
  if (finished_.empty()) return std::nullopt;
  const JobId id = finished_.front();
  finished_.pop_front();
  --unclaimed_;
  return id;
}

bool SolverService::release(JobId id) {
  std::lock_guard lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || !is_terminal(it->second->state)) return false;
  const auto claim = std::find(finished_.begin(), finished_.end(), id);
  if (claim != finished_.end()) {
    finished_.erase(claim);
    --unclaimed_;
    // unclaimed_ hitting zero can end a blocked wait_any_finished().
    cv_.notify_all();
  }
  jobs_.erase(it);
  return true;
}

bool SolverService::cancel(JobId id) {
  std::lock_guard lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  switch (job.state) {
    case JobState::kQueued:
      // Never ran: retire immediately with an empty cancelled report.
      pending_.erase(PendingKey{job.spec.priority, job.id});
      job.report.cancelled = true;
      finalize_locked(job, JobState::kCancelled);
      return true;
    case JobState::kRunning:
      job.token.request_stop();
      return true;
    case JobState::kDone:
    case JobState::kCancelled:
    case JobState::kFailed:
      return false;
  }
  return false;
}

void SolverService::cancel_all() {
  std::vector<JobId> ids;
  {
    std::lock_guard lock(mu_);
    for (const auto& [id, job] : jobs_) {
      if (!is_terminal(job->state)) ids.push_back(id);
    }
  }
  for (const JobId id : ids) cancel(id);
}

std::size_t SolverService::queue_depth() const {
  std::lock_guard lock(mu_);
  return pending_.size();
}

std::size_t SolverService::active_count() const {
  std::lock_guard lock(mu_);
  return running_;
}

std::size_t SolverService::outstanding() const {
  std::lock_guard lock(mu_);
  return pending_.size() + running_;
}

}  // namespace dabs::service
