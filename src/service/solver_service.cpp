#include "service/solver_service.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "rng/xorshift.hpp"
#include "util/failpoint.hpp"

namespace dabs::service {
namespace {

/// Registry handles, resolved once.  All updates are relaxed atomics; the
/// solver progress counters are fed from the ProgressObserver boundary
/// (EventLogObserver), never from inside the flip kernels.
struct ServiceMetrics {
  obs::Counter* submitted = nullptr;
  obs::Counter* terminal_done = nullptr;
  obs::Counter* terminal_failed = nullptr;
  obs::Counter* terminal_cancelled = nullptr;
  obs::Counter* terminal_rejected = nullptr;
  obs::Counter* retries = nullptr;
  obs::Counter* deadline_hits = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Gauge* active = nullptr;
  obs::Histogram* job_seconds_done = nullptr;
  obs::Histogram* job_seconds_failed = nullptr;
  obs::Histogram* job_seconds_cancelled = nullptr;
  obs::Histogram* job_seconds_rejected = nullptr;
  obs::Histogram* queue_wait = nullptr;
  obs::Histogram* first_event = nullptr;
  obs::Counter* progress_work = nullptr;
  obs::Counter* progress_new_best = nullptr;
  obs::Counter* progress_ticks = nullptr;
};

ServiceMetrics& service_metrics() {
  static ServiceMetrics metrics = [] {
    auto& reg = obs::MetricsRegistry::global();
    const auto& latency = obs::Histogram::default_latency_bounds();
    ServiceMetrics m;
    m.submitted =
        &reg.counter("dabs_service_jobs_submitted_total",
                     "Lifetime job submissions, rejected ones included.");
    const char* terminal_help =
        "Jobs reaching a terminal state, by disposition.";
    m.terminal_done = &reg.counter("dabs_service_jobs_terminal_total",
                                   terminal_help, {{"disposition", "done"}});
    m.terminal_failed = &reg.counter("dabs_service_jobs_terminal_total",
                                     terminal_help, {{"disposition", "failed"}});
    m.terminal_cancelled =
        &reg.counter("dabs_service_jobs_terminal_total", terminal_help,
                     {{"disposition", "cancelled"}});
    m.terminal_rejected =
        &reg.counter("dabs_service_jobs_terminal_total", terminal_help,
                     {{"disposition", "rejected"}});
    m.retries = &reg.counter("dabs_service_retries_total",
                             "Retry backoffs entered after retryable "
                             "solve() failures.");
    m.deadline_hits =
        &reg.counter("dabs_service_deadline_hits_total",
                     "Watchdog deadline expirations that fired a job's "
                     "StopToken or retired it in queue.");
    m.queue_depth = &reg.gauge("dabs_service_queue_depth",
                               "Jobs submitted and not yet picked up.");
    m.active = &reg.gauge("dabs_service_active_jobs",
                          "Jobs inside Solver::solve right now.");
    const char* job_seconds_help =
        "Submit-to-terminal latency by disposition.";
    m.job_seconds_done =
        &reg.histogram("dabs_service_job_seconds", job_seconds_help, latency,
                       {{"disposition", "done"}});
    m.job_seconds_failed =
        &reg.histogram("dabs_service_job_seconds", job_seconds_help, latency,
                       {{"disposition", "failed"}});
    m.job_seconds_cancelled =
        &reg.histogram("dabs_service_job_seconds", job_seconds_help, latency,
                       {{"disposition", "cancelled"}});
    m.job_seconds_rejected =
        &reg.histogram("dabs_service_job_seconds", job_seconds_help, latency,
                       {{"disposition", "rejected"}});
    m.queue_wait =
        &reg.histogram("dabs_service_queue_wait_seconds",
                       "Submit-to-pickup wait for jobs that ran.", latency);
    m.first_event = &reg.histogram(
        "dabs_service_submit_to_first_event_seconds",
        "Submit to first progress event (the submit->first-tick latency "
        "behind the HTTP event stream).",
        latency);
    m.progress_work =
        &reg.counter("dabs_solver_progress_work_total",
                     "Aggregate solver work units (flips) as sampled at "
                     "the ProgressObserver boundary.");
    const char* events_help = "Progress events observed, by kind.";
    m.progress_new_best =
        &reg.counter("dabs_solver_progress_events_total", events_help,
                     {{"kind", "new_best"}});
    m.progress_ticks = &reg.counter("dabs_solver_progress_events_total",
                                    events_help, {{"kind", "tick"}});
    return m;
  }();
  return metrics;
}

obs::Histogram* job_seconds_for(const ServiceMetrics& m, JobState state) {
  switch (state) {
    case JobState::kDone: return m.job_seconds_done;
    case JobState::kFailed: return m.job_seconds_failed;
    case JobState::kCancelled: return m.job_seconds_cancelled;
    case JobState::kRejected: return m.job_seconds_rejected;
    case JobState::kQueued:
    case JobState::kRunning: break;
  }
  return nullptr;
}

std::string format_seconds(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kFailed:
      return "failed";
    case JobState::kRejected:
      return "rejected";
  }
  return "?";
}

double retry_backoff(double initial_seconds, double cap_seconds,
                     std::uint32_t failures, std::uint64_t salt) {
  if (initial_seconds <= 0.0 || failures == 0) return 0.0;
  double backoff = initial_seconds;
  for (std::uint32_t i = 1; i < failures && backoff < cap_seconds; ++i) {
    backoff *= 2.0;
  }
  if (cap_seconds > 0.0) backoff = std::min(backoff, cap_seconds);
  // Deterministic jitter in [0.5, 1.0]x: the golden-ratio multiply spreads
  // consecutive (salt, failures) pairs across the xorshift state space.
  Rng rng(salt * 0x9e3779b97f4a7c15ull + failures);
  return backoff * (0.5 + 0.5 * rng.next_unit());
}

/// Internal per-job record.  Guarded by SolverService::mu_ except for
/// `solver` and `token`, which the owning worker uses outside the lock
/// (solver is never touched elsewhere once running; StopToken is
/// thread-safe by design).
struct SolverService::Job {
  JobId id = 0;
  JobSpec spec;
  std::unique_ptr<Solver> solver;
  StopToken token;
  JobState state = JobState::kQueued;
  SolveReport report;
  std::string error;
  /// solve() invocations performed (0 = never picked up).
  std::uint32_t attempts = 0;
  /// Set by the watchdog when this job's deadline came due.
  bool deadline_exceeded = false;
  // Bounded ring: newest events overwrite the oldest once full.
  std::vector<JobEvent> events;
  std::size_t ring_next = 0;
  std::uint64_t events_dropped = 0;
  /// Lifecycle timestamps on the service epoch (see JobSnapshot).
  double submitted_seconds = -1.0;
  double started_seconds = -1.0;
  double finished_seconds = -1.0;
  /// First progress event already counted into the submit->first-event
  /// latency histogram.
  bool first_event_recorded = false;
};

/// The service-owned ProgressObserver: forwards a running job's new-best /
/// tick callbacks into its bounded event log.  Lives on the worker's stack
/// for the duration of one solve() call.
class SolverService::EventLogObserver final : public ProgressObserver {
 public:
  EventLogObserver(SolverService& service, Job& job)
      : service_(service), job_(job) {}

  void on_new_best(const ProgressEvent& event) override {
    note_progress(event, /*new_best=*/true);
    append({JobEvent::Kind::kNewBest, event.elapsed_seconds,
            event.best_energy, event.work});
  }
  void on_tick(const ProgressEvent& event) override {
    note_progress(event, /*new_best=*/false);
    append({JobEvent::Kind::kTick, event.elapsed_seconds, event.best_energy,
            event.work});
  }

 private:
  /// Aggregate solver-throughput metrics, sampled here at the observer
  /// boundary (a handful of relaxed counter adds per event) so the flip
  /// kernels stay untouched.
  void note_progress(const ProgressEvent& event, bool new_best) {
    ServiceMetrics& m = service_metrics();
    (new_best ? m.progress_new_best : m.progress_ticks)->inc();
    if (event.work > last_work_) {
      m.progress_work->inc(event.work - last_work_);
      last_work_ = event.work;
    }
  }

  void append(const JobEvent& event) {
    const std::size_t cap = service_.config_.max_events_per_job;
    std::lock_guard lock(service_.mu_);
    if (!job_.first_event_recorded && job_.submitted_seconds >= 0.0) {
      job_.first_event_recorded = true;
      service_metrics().first_event->observe(
          service_.epoch_.elapsed_seconds() - job_.submitted_seconds);
    }
    if (cap == 0) return;
    if (job_.events.size() < cap) {
      job_.events.push_back(event);
    } else {
      job_.events[job_.ring_next] = event;
      job_.ring_next = (job_.ring_next + 1) % cap;
      ++job_.events_dropped;
    }
  }

  SolverService& service_;
  Job& job_;
  std::uint64_t last_work_ = 0;  // cumulative work at the last event
};

SolverService::SolverService() : SolverService(Config{}) {}

SolverService::SolverService(Config config)
    : config_(std::move(config)),
      cache_(config_.cache_bytes),
      pool_(config_.threads) {}

SolverService::~SolverService() {
  {
    std::lock_guard lock(mu_);
    shutting_down_ = true;
  }
  cancel_all();
  // Wake retry-backoff sleepers and the watchdog so both observe the
  // shutdown flag.
  cv_.notify_all();
  cv_watchdog_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  // Queued drain tasks still run (finding nothing pending); running jobs
  // unwind within one iteration of their solver loop.
  pool_.wait_idle();
}

JobId SolverService::submit(JobSpec spec) {
  if (!spec.model) {
    throw std::invalid_argument("JobSpec carries no model");
  }
  if (spec.max_attempts == 0) {
    throw std::invalid_argument("JobSpec::max_attempts must be >= 1");
  }
  // Build the solver up front so unknown names / bad options fail at
  // submit time with the registry's message, not inside a worker.
  std::unique_ptr<Solver> solver =
      SolverRegistry::global().create(spec.solver, spec.options);

  JobId id = 0;
  bool rejected = false;
  {
    std::lock_guard lock(mu_);
    if (shutting_down_) {
      throw std::runtime_error("SolverService is shutting down");
    }
    // Injected queue-push failure: the shape of an allocator/queue fault
    // between validation and enqueue (caller sees the submit throw).
    fail::point("service.queue_push");
    // Admission control: past the configured depth the job is shed, not
    // queued — it becomes a terminal kRejected record that still flows
    // through the completion stream so batch consumers see one outcome
    // per submit (and can journal + retry it on a later run).
    rejected = config_.max_queue_depth > 0 &&
               pending_.size() >= config_.max_queue_depth;
    id = next_id_++;
    ++stat_submitted_;
    service_metrics().submitted->inc();
    auto job = std::make_unique<Job>();
    job->id = id;
    job->spec = std::move(spec);
    job->solver = std::move(solver);
    job->submitted_seconds = epoch_.elapsed_seconds();
    if (rejected) {
      job->error = "rejected: queue depth " +
                   std::to_string(pending_.size()) + " at the configured " +
                   "admission bound " +
                   std::to_string(config_.max_queue_depth);
      Job& record = *job;
      jobs_.emplace(id, std::move(job));
      ++unclaimed_;
      finalize_locked(record, JobState::kRejected);
      return id;
    }
    pending_.emplace(PendingKey{job->spec.priority, id}, id);
    if (job->spec.deadline_seconds > 0.0) {
      deadlines_.emplace(
          std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(job->spec.deadline_seconds)),
          id);
      ensure_watchdog_locked();
      cv_watchdog_.notify_one();
    }
    jobs_.emplace(id, std::move(job));
    ++unclaimed_;
    update_gauges_locked();
  }
  // One drain task per submission: each pops whichever pending job is
  // highest-priority at the time it runs, so a plain FIFO pool yields
  // priority order without a bespoke scheduler.
  pool_.submit([this] { run_one(); });
  return id;
}

void SolverService::run_one() {
  Job* job = nullptr;
  {
    std::lock_guard lock(mu_);
    if (pending_.empty()) return;  // its job was cancelled while queued
    const auto it = pending_.begin();
    job = jobs_.at(it->second).get();
    pending_.erase(it);
    job->state = JobState::kRunning;
    ++running_;
    job->started_seconds = epoch_.elapsed_seconds();
    if (job->submitted_seconds >= 0.0) {
      service_metrics().queue_wait->observe(job->started_seconds -
                                            job->submitted_seconds);
    }
    update_gauges_locked();
  }
  if (config_.on_started) config_.on_started(job->id, job->spec);

  EventLogObserver observer(*this, *job);
  const std::uint32_t max_attempts = job->spec.max_attempts;
  SolveReport report;
  std::string error;
  bool failed = false;
  bool interrupted_in_backoff = false;
  std::uint32_t attempt = 0;
  for (;;) {
    ++attempt;
    failed = false;
    bool retryable = false;
    error.clear();
    try {
      // Injected worker fault: drives the retry/backoff path in tests
      // ("first:2,oom" fails twice then succeeds, etc.).
      fail::point("service.worker");
      report = job->solver->solve(request_for(*job, &observer));
    } catch (const std::bad_alloc&) {
      failed = true;
      retryable = true;
      error = "std::bad_alloc";
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
      retryable = fail::is_retryable_message(error);
    } catch (...) {
      failed = true;
      error = "unknown exception";
    }
    if (!failed || !retryable || attempt >= max_attempts) break;
    // Bounded exponential backoff before the next attempt.  The sleeping
    // worker stays responsive: cancel(), a deadline firing, and service
    // shutdown all interrupt the wait (cancel/watchdog notify cv_).
    service_metrics().retries->inc();
    const double backoff = retry_backoff(job->spec.retry_backoff_seconds,
                                         job->spec.retry_backoff_max_seconds,
                                         attempt, job->id);
    std::unique_lock lock(mu_);
    interrupted_in_backoff =
        cv_.wait_for(lock, std::chrono::duration<double>(backoff),
                     [this, job] {
                       return shutting_down_ || job->token.stop_requested();
                     });
    if (interrupted_in_backoff) break;
  }

  std::lock_guard lock(mu_);
  --running_;
  job->attempts = attempt;
  if (interrupted_in_backoff) {
    // Cancelled (or shut down) while waiting to retry: the failed
    // attempt's partial state is meaningless — report an empty cancelled
    // run, keeping the last error for forensics.
    job->error = std::move(error);
    job->report = SolveReport{};
    job->report.cancelled = true;
    finalize_locked(*job, JobState::kCancelled);
  } else if (failed) {
    job->error = std::move(error);
    finalize_locked(*job, JobState::kFailed);
  } else {
    const JobState state =
        report.cancelled ? JobState::kCancelled : JobState::kDone;
    job->report = std::move(report);
    finalize_locked(*job, state);
  }
}

void SolverService::ensure_watchdog_locked() {
  if (watchdog_.joinable() || shutting_down_) return;
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

void SolverService::watchdog_loop() {
  std::unique_lock lock(mu_);
  while (!shutting_down_) {
    if (deadlines_.empty()) {
      cv_watchdog_.wait(lock, [this] {
        return shutting_down_ || !deadlines_.empty();
      });
      continue;
    }
    const auto next = deadlines_.begin()->first;
    if (cv_watchdog_.wait_until(lock, next,
                                [this] { return shutting_down_; })) {
      break;
    }
    // Either the earliest deadline came due or an earlier one was armed;
    // fire everything at or before now.
    const auto now = std::chrono::steady_clock::now();
    while (!deadlines_.empty() && deadlines_.begin()->first <= now) {
      const JobId id = deadlines_.begin()->second;
      deadlines_.erase(deadlines_.begin());
      const auto it = jobs_.find(id);
      if (it == jobs_.end() || is_terminal(it->second->state)) continue;
      Job& job = *it->second;
      job.deadline_exceeded = true;
      service_metrics().deadline_hits->inc();
      if (job.state == JobState::kQueued) {
        // Never ran and never will: retire in place.
        pending_.erase(PendingKey{job.spec.priority, job.id});
        job.report.cancelled = true;
        finalize_locked(job, JobState::kCancelled);
      } else {
        // Running (or backing off between retries): stop cooperatively.
        job.token.request_stop();
        cv_.notify_all();
      }
    }
  }
}

SolveRequest SolverService::request_for(const Job& job,
                                        ProgressObserver* observer) {
  SolveRequest req;
  req.model = job.spec.model.get();
  req.stop = job.spec.stop;
  req.seed = job.spec.seed;
  req.stop_token = job.token;
  req.observer = observer;
  req.tick_seconds = job.spec.tick_seconds;
  return req;
}

void SolverService::update_gauges_locked() {
  ServiceMetrics& m = service_metrics();
  m.queue_depth->set(static_cast<std::int64_t>(pending_.size()));
  m.active->set(static_cast<std::int64_t>(running_));
}

void SolverService::finalize_locked(Job& job, JobState state) {
  job.state = state;
  job.finished_seconds = epoch_.elapsed_seconds();
  ServiceMetrics& metrics = service_metrics();
  switch (state) {
    case JobState::kDone:
      ++stat_done_;
      metrics.terminal_done->inc();
      break;
    case JobState::kFailed:
      ++stat_failed_;
      metrics.terminal_failed->inc();
      break;
    case JobState::kCancelled:
      ++stat_cancelled_;
      metrics.terminal_cancelled->inc();
      break;
    case JobState::kRejected:
      ++stat_rejected_;
      metrics.terminal_rejected->inc();
      break;
    case JobState::kQueued:
    case JobState::kRunning:
      break;
  }
  if (obs::Histogram* h = job_seconds_for(metrics, state);
      h != nullptr && job.submitted_seconds >= 0.0) {
    h->observe(job.finished_seconds - job.submitted_seconds);
  }
  update_gauges_locked();
  if (job.report.solver.empty()) job.report.solver = job.spec.solver;
  // Caller annotations win over same-named solver extras: the caller set
  // them deliberately per job.
  for (const auto& [k, v] : job.spec.extras) job.report.extras[k] = v;
  job.report.extras["job_id"] = std::to_string(job.id);
  if (!job.spec.tag.empty()) job.report.extras["tag"] = job.spec.tag;
  // Robustness provenance: how many solve() attempts ran and how the job
  // ultimately ended, so operators can see retries and degradation in the
  // streamed reports, not just final failure.
  job.report.extras["attempts"] = std::to_string(job.attempts);
  switch (state) {
    case JobState::kDone:
      job.report.extras["disposition"] =
          job.attempts > 1 ? "retried" : "completed";
      break;
    case JobState::kFailed:
      job.report.extras["disposition"] = "failed";
      break;
    case JobState::kCancelled:
      job.report.extras["disposition"] =
          job.deadline_exceeded ? "deadline" : "cancelled";
      break;
    case JobState::kRejected:
      job.report.extras["disposition"] = "rejected";
      break;
    case JobState::kQueued:
    case JobState::kRunning:
      break;  // finalize is never called with a non-terminal state
  }
  if (job.deadline_exceeded) job.report.extras["deadline_exceeded"] = "true";
  if (!job.error.empty() && state != JobState::kFailed &&
      state != JobState::kRejected) {
    job.report.extras["last_error"] = job.error;
  }
  // Span durations for GET /v1/jobs/{id} / batch reports: how long the job
  // sat in queue, how long it ran, and the end-to-end total.
  if (job.submitted_seconds >= 0.0) {
    job.report.extras["total_seconds"] =
        format_seconds(job.finished_seconds - job.submitted_seconds);
    if (job.started_seconds >= 0.0) {
      job.report.extras["queue_seconds"] =
          format_seconds(job.started_seconds - job.submitted_seconds);
      job.report.extras["run_seconds"] =
          format_seconds(job.finished_seconds - job.started_seconds);
    }
  }
  finished_.push_back(job.id);
  cv_.notify_all();
}

JobState SolverService::state(JobId id) const {
  std::lock_guard lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("unknown job id");
  return it->second->state;
}

JobSnapshot SolverService::snapshot(JobId id) const {
  std::lock_guard lock(mu_);
  return snapshot_locked(id);
}

JobSnapshot SolverService::snapshot_locked(JobId id) const {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("unknown job id");
  const Job& job = *it->second;
  JobSnapshot snap;
  snap.id = job.id;
  snap.state = job.state;
  snap.tag = job.spec.tag;
  snap.priority = job.spec.priority;
  snap.report = job.report;
  snap.error = job.error;
  snap.events_dropped = job.events_dropped;
  snap.submitted_seconds = job.submitted_seconds;
  snap.started_seconds = job.started_seconds;
  snap.finished_seconds = job.finished_seconds;
  // Un-rotate the ring so events come out oldest-first.
  snap.events.reserve(job.events.size());
  for (std::size_t i = 0; i < job.events.size(); ++i) {
    snap.events.push_back(
        job.events[(job.ring_next + i) % job.events.size()]);
  }
  return snap;
}

JobSnapshot SolverService::wait(JobId id) {
  std::unique_lock lock(mu_);
  if (jobs_.find(id) == jobs_.end()) {
    throw std::out_of_range("unknown job id");
  }
  // Re-find per evaluation: a concurrent release() may erase the record.
  cv_.wait(lock, [this, id] {
    const auto it = jobs_.find(id);
    return it == jobs_.end() || is_terminal(it->second->state);
  });
  return snapshot_locked(id);  // throws if the job was released meanwhile
}

std::optional<JobSnapshot> SolverService::wait_for(JobId id, double seconds) {
  return wait_until(id, std::chrono::steady_clock::now() +
                            std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(seconds)));
}

std::optional<JobSnapshot> SolverService::wait_until(
    JobId id, std::chrono::steady_clock::time_point deadline) {
  std::unique_lock lock(mu_);
  if (jobs_.find(id) == jobs_.end()) {
    throw std::out_of_range("unknown job id");
  }
  const bool terminal = cv_.wait_until(lock, deadline, [this, id] {
    const auto it = jobs_.find(id);
    return it == jobs_.end() || is_terminal(it->second->state);
  });
  if (!terminal) return std::nullopt;
  return snapshot_locked(id);  // throws if the job was released meanwhile
}

void SolverService::wait_all() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return pending_.empty() && running_ == 0; });
}

std::optional<JobId> SolverService::wait_any_finished() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return !finished_.empty() || unclaimed_ == 0; });
  if (finished_.empty()) return std::nullopt;
  const JobId id = finished_.front();
  finished_.pop_front();
  --unclaimed_;
  return id;
}

std::optional<JobId> SolverService::wait_any_finished_for(double seconds) {
  std::unique_lock lock(mu_);
  cv_.wait_for(lock, std::chrono::duration<double>(seconds),
               [this] { return !finished_.empty() || unclaimed_ == 0; });
  if (finished_.empty()) return std::nullopt;
  const JobId id = finished_.front();
  finished_.pop_front();
  --unclaimed_;
  return id;
}

std::optional<JobId> SolverService::try_any_finished() {
  std::lock_guard lock(mu_);
  if (finished_.empty()) return std::nullopt;
  const JobId id = finished_.front();
  finished_.pop_front();
  --unclaimed_;
  return id;
}

bool SolverService::release(JobId id) {
  std::lock_guard lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || !is_terminal(it->second->state)) return false;
  const auto claim = std::find(finished_.begin(), finished_.end(), id);
  if (claim != finished_.end()) {
    finished_.erase(claim);
    --unclaimed_;
    // unclaimed_ hitting zero can end a blocked wait_any_finished().
    cv_.notify_all();
  }
  jobs_.erase(it);
  return true;
}

bool SolverService::cancel(JobId id) {
  std::lock_guard lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  switch (job.state) {
    case JobState::kQueued:
      // Never ran: retire immediately with an empty cancelled report.
      pending_.erase(PendingKey{job.spec.priority, job.id});
      job.report.cancelled = true;
      finalize_locked(job, JobState::kCancelled);
      return true;
    case JobState::kRunning:
      job.token.request_stop();
      // Wake a worker sleeping in retry backoff for this job.
      cv_.notify_all();
      return true;
    case JobState::kDone:
    case JobState::kCancelled:
    case JobState::kFailed:
    case JobState::kRejected:
      return false;
  }
  return false;
}

void SolverService::cancel_all() {
  std::vector<JobId> ids;
  {
    std::lock_guard lock(mu_);
    for (const auto& [id, job] : jobs_) {
      if (!is_terminal(job->state)) ids.push_back(id);
    }
  }
  for (const JobId id : ids) cancel(id);
}

std::size_t SolverService::queue_depth() const {
  std::lock_guard lock(mu_);
  return pending_.size();
}

std::size_t SolverService::active_count() const {
  std::lock_guard lock(mu_);
  return running_;
}

std::size_t SolverService::outstanding() const {
  std::lock_guard lock(mu_);
  return pending_.size() + running_;
}

ServiceStats SolverService::stats() const {
  ServiceStats out;
  {
    std::lock_guard lock(mu_);
    out.queue_depth = pending_.size();
    out.active = running_;
    out.outstanding = pending_.size() + running_;
    out.retained = jobs_.size();
    out.submitted = stat_submitted_;
    out.done = stat_done_;
    out.failed = stat_failed_;
    out.cancelled = stat_cancelled_;
    out.rejected = stat_rejected_;
  }
  // The cache has its own lock and never calls back into the service, but
  // taking its stats outside mu_ keeps the ordering trivially acyclic.
  out.cache = cache_.stats();
  return out;
}

JobEventBatch SolverService::events_since(JobId id,
                                          std::uint64_t& cursor) const {
  std::lock_guard lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("unknown job id");
  const Job& job = *it->second;
  JobEventBatch batch;
  batch.state = job.state;
  const std::uint64_t first = job.events_dropped;  // oldest retained seq
  const std::uint64_t total = first + job.events.size();
  if (cursor < first) {
    batch.gap = true;
    cursor = first;
  }
  if (cursor > total) cursor = total;  // caller-supplied cursors can overshoot
  if (!job.events.empty()) {
    batch.events.reserve(static_cast<std::size_t>(total - cursor));
    for (std::uint64_t seq = cursor; seq < total; ++seq) {
      batch.events.push_back(
          job.events[(job.ring_next + (seq - first)) % job.events.size()]);
    }
  }
  cursor = total;
  return batch;
}

obs::JobTrace job_trace(const JobSnapshot& snapshot) {
  obs::JobTrace trace;
  trace.job_id = snapshot.id;
  trace.tag = snapshot.tag;
  trace.solver = snapshot.report.solver;
  trace.state = to_string(snapshot.state);
  trace.submitted_seconds = snapshot.submitted_seconds;
  trace.started_seconds = snapshot.started_seconds;
  trace.finished_seconds = snapshot.finished_seconds;
  trace.ticks.reserve(snapshot.events.size());
  for (const JobEvent& event : snapshot.events) {
    trace.ticks.push_back(obs::JobTrace::Tick{
        event.kind == JobEvent::Kind::kNewBest ? "new_best" : "tick",
        event.elapsed_seconds, static_cast<double>(event.best_energy),
        event.work});
  }
  return trace;
}

}  // namespace dabs::service
