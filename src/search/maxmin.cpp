#include "search/maxmin.hpp"

namespace dabs {

namespace {

/// Reservoir-samples one index with Delta <= d.  When `tabu` is non-null,
/// tabu bits are skipped; returns size() if every qualifying bit was tabu.
VarIndex sample_below(const SearchState& state, double d, Rng& rng,
                      const TabuList* tabu, std::uint64_t now) {
  const auto n = static_cast<VarIndex>(state.size());
  VarIndex pick = n;
  std::uint64_t seen = 0;
  for (VarIndex k = 0; k < n; ++k) {
    if (double(state.delta(k)) > d) continue;
    if (tabu && !tabu->allowed(k, now)) continue;
    ++seen;
    if (rng.next_index(seen) == 0) pick = k;
  }
  return pick;
}

}  // namespace

void MaxMinSearch::run(SearchState& state, Rng& rng, TabuList* tabu,
                       std::uint64_t iterations) {
  const std::uint64_t T = iterations;
  if (T == 0) return;
  ScanResult s = state.scan();  // Step 1 (best update) + min/max
  for (std::uint64_t t = 1; t <= T; ++t) {
    const double u = double(T - t) / double(T);
    const double u3 = u * u * u;
    const double upper =
        (1.0 - u3) * double(s.min_delta) + u3 * double(s.max_delta);
    const double d =
        double(s.min_delta) + rng.next_unit() * (upper - double(s.min_delta));

    VarIndex pick = sample_below(state, d, rng, tabu, state.flip_count());
    if (pick == state.size()) {
      // Every candidate was tabu; the paper's rule must still flip one bit,
      // so retry ignoring the tabu list (argmin always qualifies).
      pick = sample_below(state, d, rng, nullptr, state.flip_count());
    }
    if (tabu) tabu->record(pick, state.flip_count() + 1);
    s = state.flip_and_scan(pick);  // Step 3 fused with the next Step 1
  }
}

}  // namespace dabs
