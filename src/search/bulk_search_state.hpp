// Bulk-parallel replica state (paper §II: "bulk search" = many concurrent
// search states against one shared model).
//
// BulkSearchState maintains R independent SearchState-equivalent replicas
// in a lane-sliced layout: replicas are grouped into blocks of 64 lanes,
// and within a block every per-variable quantity is stored replica-major
// ([k][lane]), so one model row load amortizes across all 64 delta
// updates.  Solution vectors X and BEST are bit-sliced — one uint64 word
// per variable per block, same LSB-first convention as util/bit_vector —
// which makes masked per-lane flips single xor's and lets the sparse/CSR
// backend update 64 replicas per coupling with a handful of ops.
//
// The ops are *same-index* and masked: flip(i, mask) flips bit i in every
// replica whose mask bit is set.  flip_chunk() defers up to kMaxChunk
// same-index flips and applies them in ONE pass over the delta arrays
// (rank-B update): for k outside the chunk the per-flip contributions of
// Eq. 4 are order-independent (each chunk index flips at most once, so
// sigma at flip time equals its pre-chunk value), so
//
//   Delta_k += sigma_k * sum_b W_{i_b,k} * h_b,   h_b = active_b * sigma_{i_b}
//
// with h_b independent of k — the inner loop is a multiply-accumulate the
// compiler vectorizes across lanes.  The chunk indices themselves (the
// only k where sequential order matters) are replayed scalar per lane,
// reproducing SearchState's flip-by-flip semantics exactly: energies,
// Eq. 5 negations, and every intermediate visited-X BEST fold.  All
// arithmetic is exact integer math, so every replica is bit-identical to
// a single-replica SearchState fed the same flip sequence, on both
// backends and at any SIMD width.
//
// Delta storage width is chosen per model: int16 when the worst-case
// |Delta| bound max_k(|W_kk| + sum_i |W_ik|) fits (true for every +-1
// MaxCut instance incl. K2000) — quadrupling the lanes per vector register
// versus the scalar int64 kernel — int32/int64 otherwise.  The choice is
// an internal optimization; results are identical across widths.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "qubo/qubo_model.hpp"
#include "qubo/search_state.hpp"
#include "util/bit_vector.hpp"

namespace dabs {

class ThreadPool;

namespace detail {
class BulkEngine;
}

class BulkSearchState {
 public:
  /// Lanes per block: one uint64 mask word covers one block.
  static constexpr std::size_t kLanesPerBlock = 64;
  /// Maximum deferred same-index flips per flip_chunk()/descend_chunk().
  static constexpr std::size_t kMaxChunk = 8;

  /// R replicas bound to `model`, all starting at the zero vector.
  BulkSearchState(const QuboModel& model, std::size_t replicas);
  ~BulkSearchState();

  BulkSearchState(BulkSearchState&&) noexcept;
  BulkSearchState& operator=(BulkSearchState&&) noexcept;
  BulkSearchState(const BulkSearchState&) = delete;
  BulkSearchState& operator=(const BulkSearchState&) = delete;

  const QuboModel& model() const noexcept;
  std::size_t size() const noexcept;           // variables n
  std::size_t replica_count() const noexcept;  // replicas R
  /// ceil(R / 64): number of mask words per flip position.
  std::size_t block_count() const noexcept;

  /// Optional sharding: when set (and more than one block exists), bulk
  /// ops submit one task per 64-lane block via ThreadPool::submit_batch
  /// and wait_idle().  Blocks are fully independent, so sharded and
  /// unsharded execution are bit-identical.  The pool must not be shared
  /// with other concurrent work while an op runs (wait_idle is global).
  void set_thread_pool(ThreadPool* pool) noexcept;

  // --- per-replica state (mirrors SearchState) ---------------------------
  void reset();                                       // all replicas
  void reset_to(std::size_t r, const BitVector& x);   // one replica
  void reset_best(std::size_t r);
  void reset_best_all();

  Energy energy(std::size_t r) const;
  Energy delta(std::size_t r, VarIndex k) const;
  bool get(std::size_t r, VarIndex k) const;
  /// Bit-sliced views used by the bulk sweep algorithms: the 64 lanes of
  /// block `b` at variable k — solution bits, and a mask of lanes whose
  /// Delta_k is currently negative (improving flip candidates).
  std::uint64_t solution_word(std::size_t b, VarIndex k) const;
  std::uint64_t negative_delta_word(std::size_t b, VarIndex k) const;
  BitVector solution(std::size_t r) const;  // extracted copy
  BitVector best(std::size_t r) const;      // extracted copy
  Energy best_energy(std::size_t r) const;
  std::uint64_t flip_count(std::size_t r) const;
  bool is_local_minimum(std::size_t r) const;

  // --- bulk ops ----------------------------------------------------------
  // Lane masks: `block_count()` words per flip position; bit (r mod 64) of
  // word (r / 64) selects replica r.  Bits past replica_count() are
  // ignored.

  /// Flips bit i in every replica.
  void flip(VarIndex i);
  /// Flips bit i in the replicas selected by `lane_mask`.
  void flip(VarIndex i, std::span<const std::uint64_t> lane_mask);

  /// Applies up to kMaxChunk same-index masked flips in one rank-B pass.
  /// `idx` must hold distinct variable indices; `lane_masks` is laid out
  /// position-major: words [p * block_count(), (p+1) * block_count()) are
  /// the mask of idx[p].  Per replica, the flips are applied in position
  /// order with exact sequential semantics.
  void flip_chunk(std::span<const VarIndex> idx,
                  std::span<const std::uint64_t> lane_masks);

  /// flip_chunk variant for greedy sweeps: a selected lane applies flip
  /// idx[p] only if its Delta_{idx[p]} is still negative *at its turn*
  /// (exact Gauss-Seidel order, no stale-mask synchronous artifacts).
  /// When `applied` is non-empty it must match `lane_masks` in shape and
  /// receives the masks of flips actually performed.
  void descend_chunk(std::span<const VarIndex> idx,
                     std::span<const std::uint64_t> lane_masks,
                     std::span<std::uint64_t> applied = {});

  /// Step 1 for every replica: per-lane min/argmin/max over Delta with the
  /// same first-occurrence argmin and BEST-neighbor fold as
  /// SearchState::scan().  `out` must hold replica_count() entries.
  void scan(std::span<ScanResult> out);

  /// Fused Step 3 + Step 1: flip(i, lane_mask) then scan(out), processed
  /// block by block so each block's deltas are reduced while cache-hot.
  /// Exactly equivalent to `flip(i, lane_mask); scan(out);`.
  void flip_and_scan(VarIndex i, std::span<const std::uint64_t> lane_mask,
                     std::span<ScanResult> out);

 private:
  std::unique_ptr<detail::BulkEngine> engine_;
};

}  // namespace dabs
