#include "search/randommin.hpp"

#include <algorithm>
#include <limits>

namespace dabs {

void RandomMinSearch::run(SearchState& state, Rng& rng, TabuList* tabu,
                          std::uint64_t iterations) {
  const auto n = static_cast<VarIndex>(state.size());
  const std::uint64_t T = iterations;
  if (T == 0) return;
  ScanResult s = state.scan();  // Step 1; fused into flip_and_scan below
  for (std::uint64_t t = 1; t <= T; ++t) {
    const double frac = double(t) / double(T);
    const double p =
        std::max(frac * frac * frac, double(min_candidates_) / double(n));

    VarIndex pick = n;
    Energy best_d = std::numeric_limits<Energy>::max();
    const std::uint64_t now = state.flip_count();
    for (VarIndex k = 0; k < n; ++k) {
      if (!rng.next_bernoulli(p)) continue;
      if (tabu && !tabu->allowed(k, now)) continue;
      const Energy d = state.delta(k);
      if (d < best_d) {
        best_d = d;
        pick = k;
      }
    }
    if (pick == n) {
      // No candidate drawn (or all tabu): fall back to the global argmin so
      // the iteration still flips exactly one bit.
      pick = s.argmin;
    }
    if (tabu) tabu->record(pick, now + 1);
    s = state.flip_and_scan(pick);  // Step 3 fused with the next Step 1
  }
}

}  // namespace dabs
