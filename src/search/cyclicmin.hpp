// CyclicMin search (paper §III-A-4): a window of growing width
//
//   w(t) = max( (t/T)^3 * n, c ),   c = 32 by default
//
// slides around the n bits arranged in a circle; each iteration flips the
// minimum-Delta bit inside the current window, then advances the window by
// its width.  Deterministic given the window position (no random numbers),
// with an annealing-like effect because late (wide) windows are more likely
// to contain the global minimum-Delta bit.
//
// The window position persists across run() calls, mirroring a CUDA block
// whose state survives from one batch search to the next.
#pragma once

#include "search/search_algorithm.hpp"

namespace dabs {

class CyclicMinSearch final : public SearchAlgorithm {
 public:
  /// `min_window` is the constant c; clamped to n at run time.
  /// `bit_permuted` enables the bit-permuted variant of the authors'
  /// earlier ABS solver [16]: the cyclic order is a random permutation of
  /// the bit indices, refreshed at the start of every run(), which
  /// decorrelates the window contents from the model's index layout.
  explicit CyclicMinSearch(std::uint32_t min_window = 32,
                           bool bit_permuted = false)
      : min_window_(min_window), bit_permuted_(bit_permuted) {}

  void run(SearchState& state, Rng& rng, TabuList* tabu,
           std::uint64_t iterations) override;

  std::size_t window_position() const noexcept { return pos_; }
  bool bit_permuted() const noexcept { return bit_permuted_; }

 private:
  std::uint32_t min_window_;
  bool bit_permuted_;
  std::size_t pos_ = 0;
  std::vector<VarIndex> perm_;  // lazily sized to n when permuted
};

}  // namespace dabs
