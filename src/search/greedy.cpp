#include "search/greedy.hpp"

namespace dabs {

std::uint64_t greedy_descent(SearchState& state, std::uint64_t max_flips) {
  std::uint64_t flips = 0;
  while (flips < max_flips) {
    const ScanResult s = state.scan();
    if (s.min_delta >= 0) break;  // local minimum reached
    state.flip(s.argmin);
    ++flips;
  }
  return flips;
}

}  // namespace dabs
