#include "search/greedy.hpp"

namespace dabs {

std::uint64_t greedy_descent(SearchState& state, std::uint64_t max_flips) {
  if (max_flips == 0) return 0;
  std::uint64_t flips = 0;
  ScanResult s = state.scan();
  while (s.min_delta < 0) {  // negative min: not yet a local minimum
    s = state.flip_and_scan(s.argmin);
    if (++flips >= max_flips) break;
  }
  return flips;
}

}  // namespace dabs
