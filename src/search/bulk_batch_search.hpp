// Bulk batch search: one batch (paper §III-B) executed for R replicas at
// once on a BulkSearchState — the CPU shape of the paper's "bulk" in
// Diverse Adaptive *Bulk* Search, where a device runs many batch searches
// concurrently against one shared model.
//
// The bulk variant keeps the scalar BatchSearch's phase structure —
// straight-walk to the target, then greedy descents alternating with a
// diversifying main move until the per-replica flip budget b*n is spent —
// but replaces the per-replica argmin moves with *same-index sweeps* so
// every flip stays on the amortized bulk kernels:
//
//   walk    index-ordered: position k flips in the replicas whose bit k
//           differs from their target (one pass reaches every target),
//   greedy  Gauss-Seidel index sweeps via descend_chunk: a replica flips
//           position k iff Delta_k < 0 at its turn, repeated until no
//           replica moves (then every replica sits at a 1-flip local
//           minimum),
//   kick    ~s*n random positions; each still-unfinished replica joins a
//           position with probability 1/2 (lane-mask randomness is what
//           keeps replicas diverged despite the shared index stream).
//
// Like the scalar engine, the walk is unconditional (it must reach the
// target) and everything after it is budget-clamped; replicas stop being
// offered moves within kMaxChunk flips of their budget.  State persists
// across batches per replica, exactly like BatchSearch's SearchState.
//
// Each replica's evolution is an exact SearchState trajectory (energies,
// BEST folds, flip counts — see bulk_search_state.hpp); the *choice* of
// flips is the bulk-synchronous policy above, which intentionally differs
// from the scalar per-replica argmin policy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "qubo/qubo_model.hpp"
#include "rng/xorshift.hpp"
#include "search/batch_search.hpp"
#include "search/bulk_search_state.hpp"

namespace dabs {

class ThreadPool;

class BulkBatchSearch {
 public:
  BulkBatchSearch(const QuboModel& model, const BatchParams& params,
                  std::size_t replicas, std::uint64_t seed);

  /// Executes one batch per target: replica r walks toward targets[r].
  /// targets.size() may be anything in [1, replica_count()]; the remaining
  /// replicas keep their state untouched.  Returns one BatchResult per
  /// target (BEST of this batch, its energy, flips spent).
  std::vector<BatchResult> run(std::span<const BitVector> targets);

  const BulkSearchState& state() const noexcept { return state_; }
  std::size_t replica_count() const noexcept { return state_.replica_count(); }
  const BatchParams& params() const noexcept { return params_; }

  /// Shards per-block kernel work across `pool` (see BulkSearchState).
  void set_thread_pool(ThreadPool* pool) noexcept {
    state_.set_thread_pool(pool);
  }

 private:
  /// Queues (k, mask) and flushes full chunks; descend=true routes through
  /// descend_chunk and accumulates applied flips.
  struct ChunkQueue;

  BulkSearchState state_;
  BatchParams params_;
  Rng rng_;
  std::vector<std::uint64_t> target_words_;  // bit-sliced targets [b*n + k]
  std::vector<ScanResult> scan_scratch_;
};

}  // namespace dabs
