#include "search/tabu_list.hpp"

#include <limits>

namespace dabs {

namespace {
// "Never flipped": far enough in the past that any clock value is allowed.
constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::min() / 2;
}  // namespace

TabuList::TabuList(std::size_t n, std::uint32_t tenure)
    : tenure_(tenure), last_(tenure == 0 ? 0 : n, kNever) {}

void TabuList::clear() {
  for (auto& t : last_) t = kNever;
}

}  // namespace dabs
