// Abstract interface for the main search algorithms (paper §III-A).
//
// A main search performs T iterations; each iteration is one round of the
// incremental search algorithm:
//   Step 1  scan all 1-bit neighbors, update BEST           (SearchState::scan)
//   Step 2  pick the bit to flip                            (algorithm-specific)
//   Step 3  flip it, updating E and all Delta incrementally (SearchState::flip)
// The tabu rule (if enabled) filters Step-2 candidates; when every candidate
// is tabu the algorithm falls back to ignoring the rule so an iteration
// always flips exactly one bit.
#pragma once

#include <cstdint>

#include "qubo/search_state.hpp"
#include "rng/xorshift.hpp"
#include "search/tabu_list.hpp"

namespace dabs {

class SearchAlgorithm {
 public:
  virtual ~SearchAlgorithm() = default;

  /// Runs `iterations` flips on `state`.  `tabu` may be nullptr.
  /// TwoNeighbor ignores `iterations` and always performs its fixed
  /// 2n-1 flip traversal.
  virtual void run(SearchState& state, Rng& rng, TabuList* tabu,
                   std::uint64_t iterations) = 0;
};

}  // namespace dabs
