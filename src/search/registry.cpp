#include "search/registry.hpp"

#include "search/cyclicmin.hpp"
#include "search/maxmin.hpp"
#include "search/positivemin.hpp"
#include "search/randommin.hpp"
#include "search/two_neighbor.hpp"
#include "util/assert.hpp"

namespace dabs {

std::string_view to_string(MainSearch s) {
  switch (s) {
    case MainSearch::kMaxMin:
      return "MaxMin";
    case MainSearch::kPositiveMin:
      return "PositiveMin";
    case MainSearch::kCyclicMin:
      return "CyclicMin";
    case MainSearch::kRandomMin:
      return "RandomMin";
    case MainSearch::kTwoNeighbor:
      return "TwoNeighbor";
  }
  return "?";
}

std::unique_ptr<SearchAlgorithm> make_search_algorithm(MainSearch s) {
  switch (s) {
    case MainSearch::kMaxMin:
      return std::make_unique<MaxMinSearch>();
    case MainSearch::kPositiveMin:
      return std::make_unique<PositiveMinSearch>();
    case MainSearch::kCyclicMin:
      return std::make_unique<CyclicMinSearch>();
    case MainSearch::kRandomMin:
      return std::make_unique<RandomMinSearch>();
    case MainSearch::kTwoNeighbor:
      return std::make_unique<TwoNeighborSearch>();
  }
  DABS_CHECK(false, "unknown MainSearch id");
  return nullptr;
}

}  // namespace dabs
