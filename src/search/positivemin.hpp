// PositiveMin search (paper §III-A-6, after the FPGA solver of Kagawa et
// al.): let posmin = min{ Delta_i : Delta_i > 0 }.  Candidates are all bits
// with Delta_i <= posmin — i.e. every improving/neutral bit plus the
// *cheapest uphill* bits — and one candidate is flipped uniformly at
// random.  Near a local minimum the candidate set shrinks to the cheap
// uphill bits, which is exactly the hill-climbing step needed to leave it.
#pragma once

#include "search/search_algorithm.hpp"

namespace dabs {

class PositiveMinSearch final : public SearchAlgorithm {
 public:
  void run(SearchState& state, Rng& rng, TabuList* tabu,
           std::uint64_t iterations) override;
};

}  // namespace dabs
