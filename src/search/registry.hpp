// Identifiers and factory for the five *main* search algorithms the DABS
// host can dispatch to a device block (paper §III), plus names for logging
// and the frequency tables (Tables V/VI).
#pragma once

#include <array>
#include <memory>
#include <string_view>

#include "search/search_algorithm.hpp"

namespace dabs {

/// The five main search algorithms.  Values index the frequency tables.
enum class MainSearch : std::uint8_t {
  kMaxMin = 0,
  kPositiveMin,
  kCyclicMin,
  kRandomMin,
  kTwoNeighbor,
};

inline constexpr std::size_t kMainSearchCount = 5;

inline constexpr std::array<MainSearch, kMainSearchCount> kAllMainSearches = {
    MainSearch::kMaxMin, MainSearch::kPositiveMin, MainSearch::kCyclicMin,
    MainSearch::kRandomMin, MainSearch::kTwoNeighbor};

std::string_view to_string(MainSearch s);

/// Creates a fresh instance of the given algorithm (stateless between runs
/// except CyclicMin's sliding window position, hence one per device block).
std::unique_ptr<SearchAlgorithm> make_search_algorithm(MainSearch s);

}  // namespace dabs
