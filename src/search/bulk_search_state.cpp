#include "search/bulk_search_state.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <limits>
#include <type_traits>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace dabs {

namespace detail {

namespace {

constexpr std::size_t kLanes = BulkSearchState::kLanesPerBlock;
constexpr std::size_t kChunkMax = BulkSearchState::kMaxChunk;

/// Worst-case |Delta_k| over every solution: |W_kk| + sum_i |W_ik|.  Every
/// intermediate the kernels compute (stored deltas, rank-B partial sums,
/// per-chunk replays) is a true Delta of some reachable state or a partial
/// row sum, so it is bounded by this value — the basis for the narrow-width
/// engine selection.
std::uint64_t delta_bound(const QuboModel& model) {
  std::uint64_t bound = 0;
  const auto n = static_cast<VarIndex>(model.size());
  for (VarIndex k = 0; k < n; ++k) {
    std::uint64_t row = static_cast<std::uint64_t>(
        model.diag(k) < 0 ? -std::int64_t{model.diag(k)}
                          : std::int64_t{model.diag(k)});
    for (const Weight w : model.weights(k)) {
      row += static_cast<std::uint64_t>(w < 0 ? -std::int64_t{w}
                                              : std::int64_t{w});
    }
    bound = std::max(bound, row);
  }
  return bound;
}

/// Rank-B dense pass (the compute-bound core): for every k, accumulate the
/// B chunk rows weighted by the k-independent lane factors h, then fold in
/// sigma_k once.  B is a compile-time constant so the b-loop unrolls and
/// the r-loop vectorizes across the 64 contiguous lanes.
template <typename DeltaT, typename WeightT, int B>
void dense_chunk_pass(std::size_t n, const WeightT* const* rows,
                      const DeltaT* h, DeltaT* __restrict d,
                      const DeltaT* __restrict s) {
  for (std::size_t k = 0; k < n; ++k) {
    DeltaT* __restrict dk = d + k * kLanes;
    const DeltaT* __restrict sk = s + k * kLanes;
    for (std::size_t r = 0; r < kLanes; ++r) {
      DeltaT acc = 0;
      for (int b = 0; b < B; ++b) {
        acc = static_cast<DeltaT>(
            acc + static_cast<DeltaT>(rows[b][k] * h[b * kLanes + r]));
      }
      dk[r] = static_cast<DeltaT>(dk[r] + static_cast<DeltaT>(acc * sk[r]));
    }
  }
}

}  // namespace

/// Width-erased interface; BulkSearchState holds one of the three
/// instantiations below.  Virtual dispatch is per bulk op (thousands of
/// lane-flips each), so its cost is noise.
class BulkEngine {
 public:
  virtual ~BulkEngine() = default;

  const QuboModel& model() const noexcept { return *model_; }
  std::size_t size() const noexcept { return n_; }
  std::size_t replica_count() const noexcept { return replicas_; }
  std::size_t block_count() const noexcept { return blocks_; }
  void set_thread_pool(ThreadPool* pool) noexcept { pool_ = pool; }

  virtual void reset() = 0;
  virtual void reset_to(std::size_t r, const BitVector& x) = 0;
  virtual Energy delta(std::size_t r, VarIndex k) const = 0;
  virtual std::uint64_t negative_delta_word(std::size_t b,
                                            VarIndex k) const = 0;
  virtual bool is_local_minimum(std::size_t r) const = 0;
  virtual void apply_chunk(std::span<const VarIndex> idx,
                           std::span<const std::uint64_t> lane_masks,
                           bool conditional,
                           std::span<std::uint64_t> applied) = 0;
  virtual void scan(std::span<ScanResult> out) = 0;
  virtual void flip_and_scan(VarIndex i,
                             std::span<const std::uint64_t> lane_mask,
                             std::span<ScanResult> out) = 0;

  Energy energy(std::size_t r) const { return energy_[r]; }
  Energy best_energy(std::size_t r) const { return best_energy_[r]; }
  std::uint64_t flip_count(std::size_t r) const { return flips_[r]; }

  bool get(std::size_t r, VarIndex k) const {
    return (x_[(r / kLanes) * n_ + k] >> (r % kLanes)) & 1u;
  }

  std::uint64_t solution_word(std::size_t b, VarIndex k) const {
    return x_[b * n_ + k];
  }

  BitVector extract(const std::uint64_t* sliced, std::size_t r) const {
    BitVector v(n_);
    const std::uint64_t* w = sliced + (r / kLanes) * n_;
    const std::uint64_t bit = std::uint64_t{1} << (r % kLanes);
    for (std::size_t k = 0; k < n_; ++k) {
      if (w[k] & bit) v.set(k, true);
    }
    return v;
  }
  BitVector solution(std::size_t r) const { return extract(x_.data(), r); }
  BitVector best(std::size_t r) const { return extract(best_.data(), r); }

  void reset_best(std::size_t r) {
    const std::size_t b = r / kLanes;
    const std::uint64_t m = std::uint64_t{1} << (r % kLanes);
    const std::uint64_t* xw = x_.data() + b * n_;
    std::uint64_t* bw = best_.data() + b * n_;
    for (std::size_t k = 0; k < n_; ++k) bw[k] = (bw[k] & ~m) | (xw[k] & m);
    best_energy_[r] = energy_[r];
  }

  void reset_best_all() {
    best_ = x_;
    best_energy_ = energy_;
  }

 protected:
  BulkEngine(const QuboModel& model, std::size_t replicas)
      : model_(&model),
        n_(model.size()),
        replicas_(replicas),
        blocks_((replicas + kLanes - 1) / kLanes),
        x_(blocks_ * model.size(), 0),
        best_(blocks_ * model.size(), 0),
        energy_(blocks_ * kLanes, 0),
        best_energy_(blocks_ * kLanes, 0),
        flips_(blocks_ * kLanes, 0) {
    DABS_CHECK(model.size() > 0, "bulk state needs a non-empty model");
    DABS_CHECK(replicas > 0, "bulk state needs at least one replica");
  }

  /// Lanes of block b that map to real replicas (the last block may be
  /// partial); every externally supplied mask is trimmed by this.
  std::uint64_t active_lanes(std::size_t b) const {
    const std::size_t remaining = replicas_ - b * kLanes;
    return remaining >= kLanes ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << remaining) - 1;
  }

  /// Runs fn(b) for every block, sharded over the thread pool when set.
  void for_each_block(const std::function<void(std::size_t)>& fn) {
    if (pool_ != nullptr && blocks_ > 1) {
      std::vector<std::function<void()>> tasks;
      tasks.reserve(blocks_);
      for (std::size_t b = 0; b < blocks_; ++b) {
        tasks.emplace_back([&fn, b] { fn(b); });
      }
      pool_->submit_batch(std::move(tasks));
      pool_->wait_idle();
    } else {
      for (std::size_t b = 0; b < blocks_; ++b) fn(b);
    }
  }

  const QuboModel* model_;
  std::size_t n_;
  std::size_t replicas_;
  std::size_t blocks_;
  ThreadPool* pool_ = nullptr;

  // Bit-sliced X / BEST: word [b * n_ + k] holds bit k of the 64 replicas
  // of block b (lane r at bit position r, LSB-first like util/bit_vector).
  std::vector<std::uint64_t> x_;
  std::vector<std::uint64_t> best_;
  std::vector<Energy> energy_;       // [b * 64 + lane]
  std::vector<Energy> best_energy_;  // [b * 64 + lane]
  std::vector<std::uint64_t> flips_; // [b * 64 + lane]
};

template <typename DeltaT>
class BulkEngineImpl final : public BulkEngine {
  // int16 lanes read a same-width weight mirror so the multiply-accumulate
  // stays in one vector width end to end; the wider engines stream the
  // model's own int32 rows.
  using WeightT =
      std::conditional_t<std::is_same_v<DeltaT, std::int16_t>, std::int16_t,
                         Weight>;

 public:
  BulkEngineImpl(const QuboModel& model, std::size_t replicas)
      : BulkEngine(model, replicas),
        delta_(blocks_ * model.size() * kLanes),
        sval_(blocks_ * model.size() * kLanes) {
    if constexpr (std::is_same_v<DeltaT, std::int16_t>) {
      if (model.has_dense_rows()) {
        dense16_.resize(n_ * n_);
        for (std::size_t i = 0; i < n_; ++i) {
          const Weight* row = model.dense_row(static_cast<VarIndex>(i));
          for (std::size_t j = 0; j < n_; ++j) {
            dense16_[i * n_ + j] = static_cast<std::int16_t>(row[j]);
          }
        }
      } else {
        offs_.resize(n_ + 1, 0);
        for (VarIndex i = 0; i < static_cast<VarIndex>(n_); ++i) {
          offs_[i + 1] = offs_[i] + model.degree(i);
        }
        val16_.resize(offs_[n_]);
        for (VarIndex i = 0; i < static_cast<VarIndex>(n_); ++i) {
          const auto w = model.weights(i);
          for (std::size_t t = 0; t < w.size(); ++t) {
            val16_[offs_[i] + t] = static_cast<std::int16_t>(w[t]);
          }
        }
      }
    }
    reset();
  }

  void reset() override {
    std::fill(x_.begin(), x_.end(), 0);
    std::fill(energy_.begin(), energy_.end(), Energy{0});
    std::fill(flips_.begin(), flips_.end(), std::uint64_t{0});
    std::fill(sval_.begin(), sval_.end(), DeltaT{-1});
    for (std::size_t b = 0; b < blocks_; ++b) {
      DeltaT* d = delta_.data() + b * n_ * kLanes;
      for (std::size_t k = 0; k < n_; ++k) {
        const auto dk = static_cast<DeltaT>(
            model_->diag(static_cast<VarIndex>(k)));
        std::fill(d + k * kLanes, d + (k + 1) * kLanes, dk);
      }
    }
    reset_best_all();
  }

  void reset_to(std::size_t r, const BitVector& x) override {
    DABS_CHECK(x.size() == n_, "solution length mismatch");
    model_->delta_all(x, scratch_delta_);
    const std::size_t b = r / kLanes;
    const std::size_t lane = r % kLanes;
    const std::uint64_t bit = std::uint64_t{1} << lane;
    DeltaT* d = delta_.data() + b * n_ * kLanes + lane;
    DeltaT* s = sval_.data() + b * n_ * kLanes + lane;
    std::uint64_t* xw = x_.data() + b * n_;
    for (std::size_t k = 0; k < n_; ++k) {
      d[k * kLanes] = static_cast<DeltaT>(scratch_delta_[k]);
      const bool on = x.get(k);
      s[k * kLanes] = on ? DeltaT{1} : DeltaT{-1};
      xw[k] = on ? (xw[k] | bit) : (xw[k] & ~bit);
    }
    energy_[r] = model_->energy(x);
    flips_[r] = 0;
    reset_best(r);
  }

  Energy delta(std::size_t r, VarIndex k) const override {
    return delta_[(r / kLanes) * n_ * kLanes + std::size_t{k} * kLanes +
                  r % kLanes];
  }

  std::uint64_t negative_delta_word(std::size_t b, VarIndex k) const override {
    const DeltaT* dk =
        delta_.data() + b * n_ * kLanes + std::size_t{k} * kLanes;
    std::uint64_t m = 0;
    for (std::size_t r = 0; r < kLanes; ++r) {
      m |= std::uint64_t{dk[r] < 0} << r;
    }
    return m;
  }

  bool is_local_minimum(std::size_t r) const override {
    const DeltaT* d =
        delta_.data() + (r / kLanes) * n_ * kLanes + r % kLanes;
    for (std::size_t k = 0; k < n_; ++k) {
      if (d[k * kLanes] < 0) return false;
    }
    return true;
  }

  void apply_chunk(std::span<const VarIndex> idx,
                   std::span<const std::uint64_t> lane_masks, bool conditional,
                   std::span<std::uint64_t> applied) override {
    const ChunkContext ctx = make_context(idx, lane_masks, applied);
    for_each_block([&](std::size_t b) { chunk_block(ctx, conditional, b); });
  }

  void scan(std::span<ScanResult> out) override {
    DABS_CHECK(out.size() == replicas_, "scan output size mismatch");
    for_each_block([&](std::size_t b) { scan_block(b, out); });
  }

  void flip_and_scan(VarIndex i, std::span<const std::uint64_t> lane_mask,
                     std::span<ScanResult> out) override {
    DABS_CHECK(out.size() == replicas_, "scan output size mismatch");
    const VarIndex idx[1] = {i};
    const ChunkContext ctx = make_context({idx, 1}, lane_mask, {});
    // Fused per block: the scan reduces each block's deltas while they are
    // still resident from the chunk pass.
    for_each_block([&](std::size_t b) {
      chunk_block(ctx, /*conditional=*/false, b);
      scan_block(b, out);
    });
  }

 private:
  /// Per-call immutable inputs shared by every block worker.
  struct ChunkContext {
    std::span<const VarIndex> idx;
    std::span<const std::uint64_t> masks;
    std::span<std::uint64_t> applied;
    std::size_t chunk = 0;                     // B
    const WeightT* rows[kChunkMax] = {};       // dense backend only
    Weight wc[kChunkMax][kChunkMax] = {};      // chunk x chunk couplings
  };

  const WeightT* dense_row_ptr(VarIndex i) const {
    if constexpr (std::is_same_v<DeltaT, std::int16_t>) {
      return dense16_.data() + std::size_t{i} * n_;
    } else {
      return model_->dense_row(i);
    }
  }

  std::span<const WeightT> csr_row_weights(VarIndex i) const {
    if constexpr (std::is_same_v<DeltaT, std::int16_t>) {
      return {val16_.data() + offs_[i], offs_[i + 1] - offs_[i]};
    } else {
      return model_->weights(i);
    }
  }

  ChunkContext make_context(std::span<const VarIndex> idx,
                            std::span<const std::uint64_t> lane_masks,
                            std::span<std::uint64_t> applied) const {
    const std::size_t chunk = idx.size();
    DABS_CHECK(chunk >= 1 && chunk <= kChunkMax, "chunk size out of range");
    DABS_CHECK(lane_masks.size() == chunk * blocks_,
               "lane mask span size mismatch");
    DABS_CHECK(applied.empty() || applied.size() == lane_masks.size(),
               "applied span size mismatch");
    ChunkContext ctx{idx, lane_masks, applied, chunk, {}, {}};
    for (std::size_t p = 0; p < chunk; ++p) {
      DABS_CHECK(idx[p] < n_, "flip index out of range");
      for (std::size_t c = 0; c < p; ++c) {
        DABS_CHECK(idx[c] != idx[p], "chunk indices must be distinct");
      }
      if (model_->has_dense_rows()) ctx.rows[p] = dense_row_ptr(idx[p]);
      for (std::size_t c = 0; c < chunk; ++c) {
        // Dense rows give O(1) chunk couplings; the CSR fallback's O(deg)
        // lookup is cheap on the sparse models it serves.
        ctx.wc[p][c] = p == c              ? 0
                       : ctx.rows[p] != nullptr
                           ? static_cast<Weight>(ctx.rows[p][idx[c]])
                           : model_->weight(idx[p], idx[c]);
      }
    }
    return ctx;
  }

  /// Applies one chunk to block b: scalar exact replay of the chunk
  /// indices, rank-B vector pass over everything else, bit-sliced X/BEST
  /// bookkeeping.  See the header comment for why this reproduces
  /// sequential SearchState semantics bit-exactly.
  void chunk_block(const ChunkContext& ctx, bool conditional, std::size_t b) {
    const std::size_t B = ctx.chunk;
    const std::uint64_t tail = active_lanes(b);
    std::uint64_t masks[kChunkMax];
    std::uint64_t lane_union = 0;
    for (std::size_t p = 0; p < B; ++p) {
      masks[p] = ctx.masks[p * blocks_ + b] & tail;
      lane_union |= masks[p];
    }
    DeltaT* d = delta_.data() + b * n_ * kLanes;
    DeltaT* s = sval_.data() + b * n_ * kLanes;
    std::uint64_t* xw = x_.data() + b * n_;
    std::uint64_t* bw = best_.data() + b * n_;
    Energy* en = energy_.data() + b * kLanes;
    Energy* bE = best_energy_.data() + b * kLanes;
    std::uint64_t* fl = flips_.data() + b * kLanes;

    // Snapshot the chunk rows: the vector pass below scribbles on them
    // (their k is inside the chunk, where order matters), so the exact
    // values are replayed here and written back afterwards.
    DeltaT dl[kChunkMax][kLanes];
    DeltaT sl[kChunkMax][kLanes];
    for (std::size_t p = 0; p < B; ++p) {
      std::memcpy(dl[p], d + std::size_t{ctx.idx[p]} * kLanes,
                  kLanes * sizeof(DeltaT));
      std::memcpy(sl[p], s + std::size_t{ctx.idx[p]} * kLanes,
                  kLanes * sizeof(DeltaT));
    }

    // Scalar per-lane sequential replay (energies, Eq. 5, visited-BEST).
    std::int8_t bstar[kLanes] = {};
    std::uint64_t improve = 0;
    for (std::size_t r = 0; r < kLanes; ++r) {
      const std::uint64_t bit = std::uint64_t{1} << r;
      if ((lane_union & bit) == 0) continue;
      Energy e = en[r];
      Energy be = bE[r];
      int bs = -1;
      std::uint64_t count = 0;
      for (std::size_t p = 0; p < B; ++p) {
        if ((masks[p] & bit) == 0) continue;
        if (conditional && dl[p][r] >= 0) {
          masks[p] &= ~bit;  // Delta went non-negative before its turn
          continue;
        }
        e += Energy{dl[p][r]};
        ++count;
        dl[p][r] = static_cast<DeltaT>(-dl[p][r]);  // Eq. 5
        for (std::size_t c = 0; c < B; ++c) {
          if (c == p) continue;
          // Eq. 4 restricted to the chunk: sigma values at flip time.
          dl[c][r] = static_cast<DeltaT>(
              dl[c][r] +
              static_cast<DeltaT>(ctx.wc[p][c] * (sl[p][r] * sl[c][r])));
        }
        sl[p][r] = static_cast<DeltaT>(-sl[p][r]);
        if (e < be) {
          be = e;
          bs = static_cast<int>(p);
        }
      }
      en[r] = e;
      bE[r] = be;
      fl[r] += count;
      if (bs >= 0) {
        improve |= bit;
        bstar[r] = static_cast<std::int8_t>(bs);
      }
    }

    // When the conditional pass dropped every lane nothing changed at all:
    // skip the O(n * 64) vector pass (common once a sweep nears the fixed
    // point where every lane sits at a local minimum).
    std::uint64_t applied_union = 0;
    for (std::size_t p = 0; p < B; ++p) applied_union |= masks[p];
    if (applied_union == 0) {
      if (!ctx.applied.empty()) {
        for (std::size_t p = 0; p < B; ++p) ctx.applied[p * blocks_ + b] = 0;
      }
      return;
    }

    // Lane factors h_p = sigma_{i_p} at flip time (the pre-chunk value:
    // each applied lane's sl was negated exactly once above), zero for
    // lanes that did not flip position p.
    alignas(64) DeltaT hv[kChunkMax][kLanes];
    for (std::size_t p = 0; p < B; ++p) {
      for (std::size_t r = 0; r < kLanes; ++r) {
        hv[p][r] = (masks[p] >> r) & 1u ? static_cast<DeltaT>(-sl[p][r])
                                        : DeltaT{0};
      }
    }

    if (model_->has_dense_rows()) {
      dispatch_dense_pass(B, ctx.rows, &hv[0][0], d, s);
    } else {
      for (std::size_t p = 0; p < B; ++p) {
        if (masks[p] == 0) continue;
        const auto nbrs = model_->neighbors(ctx.idx[p]);
        const std::span<const WeightT> w = csr_row_weights(ctx.idx[p]);
        const DeltaT* __restrict h = hv[p];
        for (std::size_t t = 0; t < nbrs.size(); ++t) {
          const WeightT wt = w[t];
          DeltaT* __restrict dk = d + std::size_t{nbrs[t]} * kLanes;
          const DeltaT* __restrict sk = s + std::size_t{nbrs[t]} * kLanes;
          for (std::size_t r = 0; r < kLanes; ++r) {
            dk[r] = static_cast<DeltaT>(
                dk[r] + static_cast<DeltaT>(static_cast<DeltaT>(wt * h[r]) *
                                            sk[r]));
          }
        }
      }
    }

    // Write back the exactly-replayed chunk rows and the solution bits.
    for (std::size_t p = 0; p < B; ++p) {
      std::memcpy(d + std::size_t{ctx.idx[p]} * kLanes, dl[p],
                  kLanes * sizeof(DeltaT));
      std::memcpy(s + std::size_t{ctx.idx[p]} * kLanes, sl[p],
                  kLanes * sizeof(DeltaT));
      xw[ctx.idx[p]] ^= masks[p];
      if (!ctx.applied.empty()) ctx.applied[p * blocks_ + b] = masks[p];
    }

    // Visited-BEST fold: an improving lane's best state is the post-chunk
    // X with the flips *after* its last improvement undone.
    if (improve != 0) {
      for (std::size_t k = 0; k < n_; ++k) {
        bw[k] = (bw[k] & ~improve) | (xw[k] & improve);
      }
      for (std::size_t r = 0; r < kLanes; ++r) {
        const std::uint64_t bit = std::uint64_t{1} << r;
        if ((improve & bit) == 0) continue;
        for (std::size_t p = static_cast<std::size_t>(bstar[r]) + 1; p < B;
             ++p) {
          if (masks[p] & bit) bw[ctx.idx[p]] ^= bit;
        }
      }
    }
  }

  void dispatch_dense_pass(std::size_t B, const WeightT* const* rows,
                           const DeltaT* h, DeltaT* d, const DeltaT* s) {
    switch (B) {
      case 1: dense_chunk_pass<DeltaT, WeightT, 1>(n_, rows, h, d, s); break;
      case 2: dense_chunk_pass<DeltaT, WeightT, 2>(n_, rows, h, d, s); break;
      case 3: dense_chunk_pass<DeltaT, WeightT, 3>(n_, rows, h, d, s); break;
      case 4: dense_chunk_pass<DeltaT, WeightT, 4>(n_, rows, h, d, s); break;
      case 5: dense_chunk_pass<DeltaT, WeightT, 5>(n_, rows, h, d, s); break;
      case 6: dense_chunk_pass<DeltaT, WeightT, 6>(n_, rows, h, d, s); break;
      case 7: dense_chunk_pass<DeltaT, WeightT, 7>(n_, rows, h, d, s); break;
      case 8: dense_chunk_pass<DeltaT, WeightT, 8>(n_, rows, h, d, s); break;
      default: DABS_CHECK(false, "chunk size out of range");
    }
  }

  /// Step 1 over block b: branchless per-lane min/argmin/max (strict-less
  /// update == first-occurrence argmin) plus the BEST-neighbor fold.
  void scan_block(std::size_t b, std::span<ScanResult> out) {
    const DeltaT* d = delta_.data() + b * n_ * kLanes;
    const std::uint64_t* xw = x_.data() + b * n_;
    std::uint64_t* bw = best_.data() + b * n_;
    const Energy* en = energy_.data() + b * kLanes;
    Energy* bE = best_energy_.data() + b * kLanes;

    alignas(64) DeltaT mn[kLanes];
    alignas(64) DeltaT mx[kLanes];
    alignas(64) DeltaT am[kLanes];  // argmin as DeltaT: n fits by width gate
    std::memcpy(mn, d, kLanes * sizeof(DeltaT));
    std::memcpy(mx, d, kLanes * sizeof(DeltaT));
    std::memset(am, 0, sizeof(am));
    for (std::size_t k = 1; k < n_; ++k) {
      const DeltaT* __restrict dk = d + k * kLanes;
      const auto kk = static_cast<DeltaT>(k);
      for (std::size_t r = 0; r < kLanes; ++r) {
        const DeltaT v = dk[r];
        const bool lt = v < mn[r];
        am[r] = lt ? kk : am[r];
        mn[r] = lt ? v : mn[r];
        mx[r] = v > mx[r] ? v : mx[r];
      }
    }

    const std::uint64_t tail = active_lanes(b);
    std::uint64_t improve = 0;
    for (std::size_t r = 0; r < kLanes; ++r) {
      const std::uint64_t bit = std::uint64_t{1} << r;
      if ((tail & bit) == 0) break;
      const std::size_t replica = b * kLanes + r;
      out[replica] = {Energy{mn[r]}, Energy{mx[r]},
                      static_cast<VarIndex>(am[r])};
      if (en[r] + Energy{mn[r]} < bE[r]) {
        bE[r] = en[r] + Energy{mn[r]};
        improve |= bit;
      }
    }
    if (improve != 0) {
      // BEST <- X with the lane's argmin bit flipped (record_best_neighbor).
      for (std::size_t k = 0; k < n_; ++k) {
        bw[k] = (bw[k] & ~improve) | (xw[k] & improve);
      }
      for (std::size_t r = 0; r < kLanes; ++r) {
        const std::uint64_t bit = std::uint64_t{1} << r;
        if (improve & bit) bw[static_cast<std::size_t>(am[r])] ^= bit;
      }
    }
  }

  // Replica-major-blocked per-variable arrays: element [b*n + k][lane].
  std::vector<DeltaT> delta_;  // true Delta_k per lane
  std::vector<DeltaT> sval_;   // sigma(x_k) per lane, +-1
  // int16 engine's same-width weight mirrors (unused by wider engines).
  std::vector<std::int16_t> dense16_;
  std::vector<std::int16_t> val16_;
  std::vector<std::size_t> offs_;
  std::vector<Energy> scratch_delta_;  // reset_to workspace
};

namespace {

std::unique_ptr<BulkEngine> make_engine(const QuboModel& model,
                                        std::size_t replicas) {
  const std::uint64_t bound = delta_bound(model);
  if (bound <= static_cast<std::uint64_t>(
                   std::numeric_limits<std::int16_t>::max()) &&
      model.size() <= 32767) {
    return std::make_unique<BulkEngineImpl<std::int16_t>>(model, replicas);
  }
  if (bound <= static_cast<std::uint64_t>(
                   std::numeric_limits<std::int32_t>::max()) &&
      model.size() <= static_cast<std::size_t>(
                          std::numeric_limits<std::int32_t>::max())) {
    return std::make_unique<BulkEngineImpl<std::int32_t>>(model, replicas);
  }
  return std::make_unique<BulkEngineImpl<std::int64_t>>(model, replicas);
}

}  // namespace

}  // namespace detail

BulkSearchState::BulkSearchState(const QuboModel& model, std::size_t replicas)
    : engine_(detail::make_engine(model, replicas)) {}

BulkSearchState::~BulkSearchState() = default;
BulkSearchState::BulkSearchState(BulkSearchState&&) noexcept = default;
BulkSearchState& BulkSearchState::operator=(BulkSearchState&&) noexcept =
    default;

const QuboModel& BulkSearchState::model() const noexcept {
  return engine_->model();
}
std::size_t BulkSearchState::size() const noexcept { return engine_->size(); }
std::size_t BulkSearchState::replica_count() const noexcept {
  return engine_->replica_count();
}
std::size_t BulkSearchState::block_count() const noexcept {
  return engine_->block_count();
}
void BulkSearchState::set_thread_pool(ThreadPool* pool) noexcept {
  engine_->set_thread_pool(pool);
}

void BulkSearchState::reset() { engine_->reset(); }

void BulkSearchState::reset_to(std::size_t r, const BitVector& x) {
  DABS_CHECK(r < replica_count(), "replica index out of range");
  engine_->reset_to(r, x);
}

void BulkSearchState::reset_best(std::size_t r) {
  DABS_CHECK(r < replica_count(), "replica index out of range");
  engine_->reset_best(r);
}

void BulkSearchState::reset_best_all() { engine_->reset_best_all(); }

Energy BulkSearchState::energy(std::size_t r) const {
  DABS_CHECK(r < replica_count(), "replica index out of range");
  return engine_->energy(r);
}

Energy BulkSearchState::delta(std::size_t r, VarIndex k) const {
  DABS_CHECK(r < replica_count(), "replica index out of range");
  DABS_CHECK(k < size(), "variable index out of range");
  return engine_->delta(r, k);
}

bool BulkSearchState::get(std::size_t r, VarIndex k) const {
  DABS_CHECK(r < replica_count(), "replica index out of range");
  DABS_CHECK(k < size(), "variable index out of range");
  return engine_->get(r, k);
}

BitVector BulkSearchState::solution(std::size_t r) const {
  DABS_CHECK(r < replica_count(), "replica index out of range");
  return engine_->solution(r);
}

BitVector BulkSearchState::best(std::size_t r) const {
  DABS_CHECK(r < replica_count(), "replica index out of range");
  return engine_->best(r);
}

Energy BulkSearchState::best_energy(std::size_t r) const {
  DABS_CHECK(r < replica_count(), "replica index out of range");
  return engine_->best_energy(r);
}

std::uint64_t BulkSearchState::flip_count(std::size_t r) const {
  DABS_CHECK(r < replica_count(), "replica index out of range");
  return engine_->flip_count(r);
}

bool BulkSearchState::is_local_minimum(std::size_t r) const {
  DABS_CHECK(r < replica_count(), "replica index out of range");
  return engine_->is_local_minimum(r);
}

std::uint64_t BulkSearchState::solution_word(std::size_t b, VarIndex k) const {
  DABS_CHECK(b < block_count(), "block index out of range");
  DABS_CHECK(k < size(), "variable index out of range");
  return engine_->solution_word(b, k);
}

std::uint64_t BulkSearchState::negative_delta_word(std::size_t b,
                                                   VarIndex k) const {
  DABS_CHECK(b < block_count(), "block index out of range");
  DABS_CHECK(k < size(), "variable index out of range");
  return engine_->negative_delta_word(b, k);
}

void BulkSearchState::flip(VarIndex i) {
  std::vector<std::uint64_t> all(block_count(), ~std::uint64_t{0});
  flip(i, all);
}

void BulkSearchState::flip(VarIndex i,
                           std::span<const std::uint64_t> lane_mask) {
  const VarIndex idx[1] = {i};
  engine_->apply_chunk({idx, 1}, lane_mask, /*conditional=*/false, {});
}

void BulkSearchState::flip_chunk(std::span<const VarIndex> idx,
                                 std::span<const std::uint64_t> lane_masks) {
  engine_->apply_chunk(idx, lane_masks, /*conditional=*/false, {});
}

void BulkSearchState::descend_chunk(std::span<const VarIndex> idx,
                                    std::span<const std::uint64_t> lane_masks,
                                    std::span<std::uint64_t> applied) {
  engine_->apply_chunk(idx, lane_masks, /*conditional=*/true, applied);
}

void BulkSearchState::scan(std::span<ScanResult> out) { engine_->scan(out); }

void BulkSearchState::flip_and_scan(VarIndex i,
                                    std::span<const std::uint64_t> lane_mask,
                                    std::span<ScanResult> out) {
  engine_->flip_and_scan(i, lane_mask, out);
}

}  // namespace dabs
