// TwoNeighbor search (paper §III-A-7): a deterministic 2n-1 flip ripple
//
//   0, 1, 0, 2, 1, 3, 2, 4, 3, ..., n-1, n-2
//
// that makes the walking solution visit every 1-bit neighbor of the start
// vector; because Step 1 scans all 1-bit neighbors of every visited vector,
// the batch search effectively examines the full 2-bit neighborhood (and
// parts of the 3-bit one).  Runs exactly once per batch search.
#pragma once

#include "search/search_algorithm.hpp"

namespace dabs {

class TwoNeighborSearch final : public SearchAlgorithm {
 public:
  /// Performs the fixed 2n-1 flip ripple, truncated to at most
  /// `iterations` flips (0 = uncapped) so a batch budget can clamp it.
  void run(SearchState& state, Rng& rng, TabuList* tabu,
           std::uint64_t iterations) override;
};

}  // namespace dabs
