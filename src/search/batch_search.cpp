#include "search/batch_search.hpp"

#include <algorithm>

#include "search/greedy.hpp"
#include "search/straight.hpp"
#include "util/assert.hpp"

namespace dabs {

BatchSearch::BatchSearch(const QuboModel& model, const BatchParams& params,
                         std::uint64_t seed)
    : state_(model),
      params_(params),
      rng_(seed),
      tabu_(model.size(), params.tabu_tenure) {
  DABS_CHECK(params.search_flip_factor > 0, "search flip factor must be > 0");
  DABS_CHECK(params.batch_flip_factor > 0, "batch flip factor must be > 0");
  for (std::size_t i = 0; i < kMainSearchCount; ++i) {
    algos_[i] = make_search_algorithm(static_cast<MainSearch>(i));
  }
}

BatchResult BatchSearch::run(const BitVector& target, MainSearch algo) {
  const auto n = state_.size();
  const std::uint64_t start_flips = state_.flip_count();
  const auto budget = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(params_.batch_flip_factor * double(n)));
  const auto main_iters = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(params_.search_flip_factor * double(n)));

  auto spent = [&] { return state_.flip_count() - start_flips; };

  state_.reset_best();  // the batch reports the best found *in this batch*
  straight_walk(state_, target);
  SearchAlgorithm& main = *algos_[static_cast<std::size_t>(algo)];

  // Budget discipline: the walk is unconditional (it must reach the
  // target) and greedy phases always run to a local minimum (they
  // terminate — every flip strictly improves E — and the batch invariant
  // is that it ends greedy-polished).  Main-search phases, however, are
  // clamped to the flips remaining: without the clamp a batch one flip
  // short of its budget would still spend a full s*n main stride (or, for
  // TwoNeighbor, ignore the budget outright with its 2n-1 ripple).
  const auto remaining = [&]() -> std::uint64_t {
    const std::uint64_t s = spent();
    return s >= budget ? 0 : budget - s;
  };

  if (algo == MainSearch::kTwoNeighbor) {
    // Repeating the deterministic ripple is pointless (paper §III-B), so the
    // batch is straight -> greedy -> TwoNeighbor -> greedy.
    greedy_descent(state_);
    if (const std::uint64_t left = remaining(); left > 0) {
      main.run(state_, rng_, &tabu_, left);
    }
    greedy_descent(state_);
  } else {
    for (;;) {
      greedy_descent(state_);
      if (spent() >= budget) break;
      main.run(state_, rng_, &tabu_, std::min(main_iters, remaining()));
    }
  }
  return {state_.best(), state_.best_energy(), spent()};
}

}  // namespace dabs
