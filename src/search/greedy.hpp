// Greedy search (paper §III-A-1): repeatedly flip the bit with minimum
// Delta while that minimum is negative; terminates at a 1-flip local
// minimum.  Not a "main" algorithm — the batch search interleaves it
// between main-search segments.
#pragma once

#include <cstdint>

#include "qubo/search_state.hpp"

namespace dabs {

/// Runs greedy descent to a local minimum (or until `max_flips`).
/// Returns the number of flips performed.
std::uint64_t greedy_descent(
    SearchState& state,
    std::uint64_t max_flips = ~std::uint64_t{0});

}  // namespace dabs
