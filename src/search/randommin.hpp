// RandomMin search (paper §III-A-5): each iteration samples every bit as a
// candidate with probability
//
//   p(t) = max( (t/T)^3, c/n ),   c = 32 by default
//
// and flips the candidate with minimum Delta.  Early iterations look at few
// bits (so poor bits get flipped, escaping minima); late iterations look at
// nearly all bits, approaching greedy behaviour.
#pragma once

#include "search/search_algorithm.hpp"

namespace dabs {

class RandomMinSearch final : public SearchAlgorithm {
 public:
  /// `min_candidates` is the constant c in p(t) >= c/n.
  explicit RandomMinSearch(std::uint32_t min_candidates = 32)
      : min_candidates_(min_candidates) {}

  void run(SearchState& state, Rng& rng, TabuList* tabu,
           std::uint64_t iterations) override;

 private:
  std::uint32_t min_candidates_;
};

}  // namespace dabs
