// Straight search (paper §III-A-2): walk the current solution X toward a
// target vector D, each step flipping the minimum-Delta bit among those
// where X and D differ, so the Hamming distance shrinks by one per flip
// and the walk ends exactly at D.
#pragma once

#include <cstdint>

#include "qubo/search_state.hpp"
#include "util/bit_vector.hpp"

namespace dabs {

/// Walks state's solution to `target`; returns the number of flips
/// (= initial Hamming distance).  Step-1 best tracking stays active: each
/// iteration also updates BEST with the globally best 1-bit neighbor.
std::uint64_t straight_walk(SearchState& state, const BitVector& target);

}  // namespace dabs
