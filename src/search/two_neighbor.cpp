#include "search/two_neighbor.hpp"

namespace dabs {

void TwoNeighborSearch::run(SearchState& state, Rng& /*rng*/,
                            TabuList* /*tabu*/, std::uint64_t /*iterations*/) {
  const auto n = static_cast<VarIndex>(state.size());
  if (n == 0) return;
  // Flip sequence 0, then (k, k-1) for k = 1 .. n-1: 2n-1 flips total;
  // every Step 3 is fused with the following Step 1.
  state.scan();
  state.flip_and_scan(0);
  for (VarIndex k = 1; k < n; ++k) {
    state.flip_and_scan(k);
    state.flip_and_scan(k - 1);
  }
}

}  // namespace dabs
