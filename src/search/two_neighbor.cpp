#include "search/two_neighbor.hpp"

namespace dabs {

void TwoNeighborSearch::run(SearchState& state, Rng& /*rng*/,
                            TabuList* /*tabu*/, std::uint64_t iterations) {
  const auto n = static_cast<VarIndex>(state.size());
  if (n == 0) return;
  // Flip sequence 0, then (k, k-1) for k = 1 .. n-1: 2n-1 flips total;
  // every Step 3 is fused with the following Step 1.  `iterations` caps the
  // flip count (0 = uncapped full ripple) so a batch budget can truncate
  // the sweep.
  const std::uint64_t cap = iterations == 0 ? ~std::uint64_t{0} : iterations;
  std::uint64_t flips = 0;
  state.scan();
  state.flip_and_scan(0);
  if (++flips >= cap) return;
  for (VarIndex k = 1; k < n; ++k) {
    state.flip_and_scan(k);
    if (++flips >= cap) return;
    state.flip_and_scan(k - 1);
    if (++flips >= cap) return;
  }
}

}  // namespace dabs
