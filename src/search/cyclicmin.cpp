#include "search/cyclicmin.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace dabs {

void CyclicMinSearch::run(SearchState& state, Rng& rng, TabuList* tabu,
                          std::uint64_t iterations) {
  const auto n = state.size();
  const std::uint64_t T = iterations;
  if (T == 0) return;

  if (bit_permuted_) {
    // Fresh Fisher-Yates shuffle of the cyclic order per run (ABS [16]).
    if (perm_.size() != n) {
      perm_.resize(n);
      std::iota(perm_.begin(), perm_.end(), 0);
    }
    for (std::size_t i = n - 1; i > 0; --i) {
      std::swap(perm_[i], perm_[rng.next_index(i + 1)]);
    }
  }

  state.scan();  // Step 1; later iterations fuse it into flip_and_scan
  for (std::uint64_t t = 1; t <= T; ++t) {
    const double frac = double(t) / double(T);
    const auto width = std::clamp<std::size_t>(
        static_cast<std::size_t>(frac * frac * frac * double(n)),
        std::min<std::size_t>(min_window_, n), n);

    // Minimum Delta inside the cyclic window [pos_, pos_ + width).
    VarIndex pick = static_cast<VarIndex>(n);
    VarIndex pick_any = static_cast<VarIndex>(n);  // ignoring tabu
    Energy best_d = std::numeric_limits<Energy>::max();
    Energy best_any = std::numeric_limits<Energy>::max();
    const std::uint64_t now = state.flip_count();
    for (std::size_t o = 0; o < width; ++o) {
      const std::size_t slot = (pos_ + o) % n;
      const auto k =
          bit_permuted_ ? perm_[slot] : static_cast<VarIndex>(slot);
      const Energy d = state.delta(k);
      if (d < best_any) {
        best_any = d;
        pick_any = k;
      }
      if ((!tabu || tabu->allowed(k, now)) && d < best_d) {
        best_d = d;
        pick = k;
      }
    }
    if (pick == n) pick = pick_any;  // whole window tabu: flip anyway
    if (tabu) tabu->record(pick, now + 1);
    state.flip_and_scan(pick);  // Step 3 fused with the next Step 1
    pos_ = (pos_ + width) % n;
  }
}

}  // namespace dabs
