// MaxMin search (paper §III-A-3), an iteration-dependent algorithm with a
// simulated-annealing-like threshold schedule:
//
//   D(t) = (1 - u^3) * minDelta + u^3 * maxDelta,   u = (T - t) / T
//
// Each iteration draws a threshold d uniformly from [minDelta, D(t)] and
// flips a bit chosen uniformly at random among { i : Delta_i <= d } (tabu
// bits excluded while possible).  Early iterations tolerate large uphill
// moves; late iterations become nearly greedy.
#pragma once

#include "search/search_algorithm.hpp"

namespace dabs {

class MaxMinSearch final : public SearchAlgorithm {
 public:
  void run(SearchState& state, Rng& rng, TabuList* tabu,
           std::uint64_t iterations) override;
};

}  // namespace dabs
