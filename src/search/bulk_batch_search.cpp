#include "search/bulk_batch_search.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace dabs {

namespace {

constexpr std::size_t kChunk = BulkSearchState::kMaxChunk;

}  // namespace

/// Accumulates same-index masked flips and applies them in rank-B chunks.
struct BulkBatchSearch::ChunkQueue {
  BulkSearchState& state;
  const std::size_t blocks;
  const bool descend;
  std::vector<VarIndex> idx;
  std::vector<std::uint64_t> masks;    // [pos][block]
  std::vector<std::uint64_t> applied;  // scratch for descend_chunk
  std::uint64_t applied_flips = 0;     // lane-flips actually performed

  ChunkQueue(BulkSearchState& s, bool descend_mode)
      : state(s), blocks(s.block_count()), descend(descend_mode) {
    idx.reserve(kChunk);
    masks.reserve(kChunk * blocks);
  }

  bool pending(VarIndex k) const {
    return std::find(idx.begin(), idx.end(), k) != idx.end();
  }

  /// mask points at `blocks` words for position k.
  void push(VarIndex k, const std::uint64_t* mask) {
    if (pending(k)) flush();  // chunk indices must be distinct
    idx.push_back(k);
    masks.insert(masks.end(), mask, mask + blocks);
    if (idx.size() == kChunk) flush();
  }

  void flush() {
    if (idx.empty()) return;
    if (descend) {
      applied.assign(masks.size(), 0);
      state.descend_chunk(idx, masks, applied);
      for (const std::uint64_t m : applied) {
        applied_flips += static_cast<std::uint64_t>(std::popcount(m));
      }
    } else {
      state.flip_chunk(idx, masks);
      for (const std::uint64_t m : masks) {
        applied_flips += static_cast<std::uint64_t>(std::popcount(m));
      }
    }
    idx.clear();
    masks.clear();
  }
};

BulkBatchSearch::BulkBatchSearch(const QuboModel& model,
                                 const BatchParams& params,
                                 std::size_t replicas, std::uint64_t seed)
    : state_(model, replicas),
      params_(params),
      rng_(seed),
      target_words_(state_.block_count() * model.size(), 0),
      scan_scratch_(replicas) {
  DABS_CHECK(params.search_flip_factor > 0, "search flip factor must be > 0");
  DABS_CHECK(params.batch_flip_factor > 0, "batch flip factor must be > 0");
}

std::vector<BatchResult> BulkBatchSearch::run(
    std::span<const BitVector> targets) {
  const std::size_t n = state_.size();
  const std::size_t replicas = state_.replica_count();
  const std::size_t active_count = targets.size();
  DABS_CHECK(active_count >= 1 && active_count <= replicas,
             "target count must be in [1, replica_count()]");
  const std::size_t blocks = state_.block_count();
  const auto budget = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(params_.batch_flip_factor * double(n)));
  const auto kick_len = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(params_.search_flip_factor * double(n)));

  // Lane masks of the replicas participating in this batch (lanes 0..T-1).
  std::vector<std::uint64_t> active(blocks, 0);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * BulkSearchState::kLanesPerBlock;
    if (active_count <= lo) break;
    const std::size_t cnt = std::min(active_count - lo,
                                     BulkSearchState::kLanesPerBlock);
    active[b] = cnt == 64 ? ~std::uint64_t{0}
                          : (std::uint64_t{1} << cnt) - 1;
  }

  // Bit-slice the targets and anchor each participating replica's BEST.
  std::vector<std::uint64_t> start_flips(active_count);
  std::fill(target_words_.begin(), target_words_.end(), 0);
  for (std::size_t r = 0; r < active_count; ++r) {
    DABS_CHECK(targets[r].size() == n, "target length mismatch");
    state_.reset_best(r);
    start_flips[r] = state_.flip_count(r);
    const std::uint64_t bit =
        std::uint64_t{1} << (r % BulkSearchState::kLanesPerBlock);
    std::uint64_t* tw =
        target_words_.data() + (r / BulkSearchState::kLanesPerBlock) * n;
    for (std::size_t k = 0; k < n; ++k) {
      if (targets[r].get(k)) tw[k] |= bit;
    }
  }

  const auto spent = [&](std::size_t r) {
    return state_.flip_count(r) - start_flips[r];
  };
  // Lanes whose budget is exhausted; refreshed after every chunk flush, so
  // a replica can overshoot by at most kMaxChunk flips.
  std::vector<std::uint64_t> done(blocks, 0);
  const auto refresh_done = [&] {
    bool all = true;
    for (std::size_t r = 0; r < active_count; ++r) {
      if (spent(r) >= budget) {
        done[r / 64] |= std::uint64_t{1} << (r % 64);
      } else {
        all = false;
      }
    }
    return all;
  };

  std::vector<std::uint64_t> mask(blocks);

  // --- straight walk (unconditional, like the scalar engine) -------------
  // Index order: flipping position k never changes which later positions
  // differ, so one pass lands every replica exactly on its target.
  {
    ChunkQueue q(state_, /*descend_mode=*/false);
    for (VarIndex k = 0; k < static_cast<VarIndex>(n); ++k) {
      std::uint64_t any = 0;
      for (std::size_t b = 0; b < blocks; ++b) {
        mask[b] = (state_.solution_word(b, k) ^ target_words_[b * n + k]) &
                  active[b];
        any |= mask[b];
      }
      if (any != 0) q.push(k, mask.data());
    }
    q.flush();
  }
  state_.scan(scan_scratch_);  // Step 1: fold best 1-bit neighbors

  // --- greedy sweeps alternating with random kicks -----------------------
  bool all_done = refresh_done();
  while (!all_done) {
    // Greedy: sweep until no replica moves — then every unfinished replica
    // is at a 1-flip local minimum (the candidate masks may be stale by up
    // to a chunk, but descend_chunk re-checks the sign at flip time, and a
    // quiescent full sweep proves every Delta_k was non-negative).
    for (;;) {
      ChunkQueue q(state_, /*descend_mode=*/true);
      std::uint64_t sweep_applied = 0;
      for (VarIndex k = 0; k < static_cast<VarIndex>(n); ++k) {
        std::uint64_t any = 0;
        for (std::size_t b = 0; b < blocks; ++b) {
          mask[b] = state_.negative_delta_word(b, k) & active[b] & ~done[b];
          any |= mask[b];
        }
        if (any != 0) {
          const std::uint64_t before = q.applied_flips;
          q.push(k, mask.data());
          if (q.applied_flips != before) {
            sweep_applied += q.applied_flips - before;
            all_done = refresh_done();
          }
        }
      }
      const std::uint64_t before = q.applied_flips;
      q.flush();
      sweep_applied += q.applied_flips - before;
      all_done = refresh_done();
      if (sweep_applied == 0 || all_done) break;
    }
    if (all_done) break;

    // Kick: kick_len (~s*n) random positions; every unfinished replica
    // joins each with probability 1/2 — the final position includes all of
    // them so each outer round is guaranteed to spend at least one flip.
    ChunkQueue q(state_, /*descend_mode=*/false);
    for (std::uint64_t j = 0; j < kick_len; ++j) {
      const auto i = static_cast<VarIndex>(rng_.next_index(n));
      const bool force = j + 1 == kick_len;
      std::uint64_t any = 0;
      for (std::size_t b = 0; b < blocks; ++b) {
        const std::uint64_t stuck = active[b] & ~done[b];
        mask[b] = force ? stuck : (rng_() & stuck);
        any |= mask[b];
      }
      if (any != 0) q.push(i, mask.data());
      all_done = refresh_done();
      if (all_done) break;
    }
    q.flush();
    state_.scan(scan_scratch_);
    all_done = refresh_done();
  }

  std::vector<BatchResult> results;
  results.reserve(active_count);
  for (std::size_t r = 0; r < active_count; ++r) {
    results.push_back({state_.best(r), state_.best_energy(r), spent(r)});
  }
  return results;
}

}  // namespace dabs
