#include "search/straight.hpp"

#include <limits>

#include "util/assert.hpp"

namespace dabs {

std::uint64_t straight_walk(SearchState& state, const BitVector& target) {
  DABS_CHECK(target.size() == state.size(), "target length mismatch");
  std::uint64_t flips = 0;
  const auto n = static_cast<VarIndex>(state.size());
  state.scan();  // Step 1: BEST update over all 1-bit neighbors
  for (;;) {
    // Step 2: minimum-Delta bit among those differing from the target.
    Energy diff_min = std::numeric_limits<Energy>::max();
    VarIndex diff_arg = n;  // n == "no differing bit left"
    const auto& x = state.solution();
    for (VarIndex k = 0; k < n; ++k) {
      if (x.get(k) != target.get(k) && state.delta(k) < diff_min) {
        diff_min = state.delta(k);
        diff_arg = k;
      }
    }
    if (diff_arg == n) break;  // X == target
    state.flip_and_scan(diff_arg);  // Step 3 fused with the next Step 1
    ++flips;
  }
  return flips;
}

}  // namespace dabs
