// Tabu bookkeeping (paper §III-A-8): a bit flipped at iteration t may not be
// flipped again during the next `tenure` iterations.  The iteration clock is
// the SearchState flip counter, which increases monotonically across the
// batch searches a device block executes.
#pragma once

#include <cstdint>
#include <vector>

#include "qubo/types.hpp"

namespace dabs {

class TabuList {
 public:
  /// tenure == 0 disables the tabu rule (allowed() is always true).
  TabuList(std::size_t n, std::uint32_t tenure);

  std::uint32_t tenure() const noexcept { return tenure_; }

  /// Marks bit i as flipped at clock value `now`.
  void record(VarIndex i, std::uint64_t now) {
    if (tenure_ != 0) last_[i] = static_cast<std::int64_t>(now);
  }

  /// True when bit i may be flipped at clock value `now`.
  bool allowed(VarIndex i, std::uint64_t now) const {
    return tenure_ == 0 ||
           static_cast<std::int64_t>(now) - last_[i] >
               static_cast<std::int64_t>(tenure_);
  }

  /// Forgets all history.
  void clear();

 private:
  std::uint32_t tenure_;
  std::vector<std::int64_t> last_;
};

}  // namespace dabs
