// Batch search (paper §III-B): the unit of work a device block executes for
// one host packet.
//
//   1. Straight-walk the block's persistent solution X to the target D
//      (unconditional — the walk must reach the target even when it alone
//      exceeds the budget).
//   2. Repeat { Greedy to a local minimum; if total flips >= b*n stop;
//               run the selected main search for min(s*n, remaining)
//               flips }.  TwoNeighbor is special-cased: it runs exactly
//      once, bracketed by Greedy phases, its 2n-1 ripple truncated to the
//      remaining budget.  Main phases never overdraw the budget; only the
//      walk and the terminal greedy polish can overshoot it, so a batch
//      always ends at a 1-flip local minimum.
//   3. Report BEST / E(BEST) accumulated by the Step-1 scans.
//
// The SearchState (and CyclicMin window position) persists across batches,
// exactly like a CUDA block whose registers survive between kernel work
// items; the first batch starts from the zero vector.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "qubo/qubo_model.hpp"
#include "qubo/search_state.hpp"
#include "rng/xorshift.hpp"
#include "search/registry.hpp"
#include "search/tabu_list.hpp"
#include "util/bit_vector.hpp"

namespace dabs {

struct BatchParams {
  double search_flip_factor = 0.1;  // s: main search runs s*n flips
  double batch_flip_factor = 1.0;   // b: batch ends once >= b*n total flips
  std::uint32_t tabu_tenure = 8;    // 0 disables the tabu rule
};

struct BatchResult {
  BitVector best;
  Energy best_energy;
  std::uint64_t flips;  // flips spent in this batch
};

class BatchSearch {
 public:
  BatchSearch(const QuboModel& model, const BatchParams& params,
              std::uint64_t seed);

  /// Executes one batch toward `target` with the given main search.
  BatchResult run(const BitVector& target, MainSearch algo);

  /// Current (persistent) walking solution — exposed for tests.
  const SearchState& state() const noexcept { return state_; }

  const BatchParams& params() const noexcept { return params_; }

 private:
  SearchState state_;
  BatchParams params_;
  Rng rng_;
  TabuList tabu_;
  // One long-lived instance per algorithm so CyclicMin's window position
  // persists across batches.
  std::array<std::unique_ptr<SearchAlgorithm>, kMainSearchCount> algos_;
};

}  // namespace dabs
