#include "search/positivemin.hpp"

#include <limits>

namespace dabs {

void PositiveMinSearch::run(SearchState& state, Rng& rng, TabuList* tabu,
                            std::uint64_t iterations) {
  const auto n = static_cast<VarIndex>(state.size());
  if (iterations == 0) return;
  state.scan();  // Step 1; later iterations fuse it into flip_and_scan
  for (std::uint64_t t = 1; t <= iterations; ++t) {
    // posmin(Delta) = smallest strictly positive Delta; when no Delta is
    // positive every bit qualifies as a candidate.
    Energy posmin = std::numeric_limits<Energy>::max();
    for (VarIndex k = 0; k < n; ++k) {
      const Energy d = state.delta(k);
      if (d > 0 && d < posmin) posmin = d;
    }

    const std::uint64_t now = state.flip_count();
    VarIndex pick = n;
    VarIndex pick_any = n;
    std::uint64_t seen = 0, seen_any = 0;
    for (VarIndex k = 0; k < n; ++k) {
      if (state.delta(k) > posmin) continue;
      ++seen_any;
      if (rng.next_index(seen_any) == 0) pick_any = k;
      if (tabu && !tabu->allowed(k, now)) continue;
      ++seen;
      if (rng.next_index(seen) == 0) pick = k;
    }
    if (pick == n) pick = pick_any;  // all candidates tabu
    if (tabu) tabu->record(pick, now + 1);
    state.flip_and_scan(pick);  // Step 3 fused with the next Step 1
  }
}

}  // namespace dabs
