#include "io/gset.hpp"

#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace dabs::io {

problems::MaxCutInstance read_gset(std::istream& in, std::string name) {
  std::size_t n = 0, m = 0;
  DABS_CHECK(static_cast<bool>(in >> n >> m), "gset: missing header");
  DABS_CHECK(n >= 2, "gset: fewer than two nodes");
  problems::MaxCutInstance inst;
  inst.n = n;
  inst.name = std::move(name);
  inst.edges.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    long long u = 0, v = 0, w = 0;
    DABS_CHECK(static_cast<bool>(in >> u >> v >> w),
               "gset: truncated edge list");
    DABS_CHECK(u >= 1 && v >= 1 && u <= static_cast<long long>(n) &&
                   v <= static_cast<long long>(n) && u != v,
               "gset: invalid edge endpoints");
    inst.edges.push_back({static_cast<VarIndex>(u - 1),
                          static_cast<VarIndex>(v - 1),
                          static_cast<Weight>(w)});
  }
  return inst;
}

problems::MaxCutInstance read_gset_file(const std::string& path) {
  std::ifstream in(path);
  DABS_CHECK(in.good(), "gset: cannot open file " + path);
  // Use the filename (without directories) as the instance name.
  const auto slash = path.find_last_of('/');
  return read_gset(in, slash == std::string::npos ? path
                                                  : path.substr(slash + 1));
}

void write_gset(std::ostream& out, const problems::MaxCutInstance& inst) {
  out << inst.n << ' ' << inst.edges.size() << '\n';
  for (const auto& e : inst.edges) {
    out << (e.u + 1) << ' ' << (e.v + 1) << ' ' << e.w << '\n';
  }
}

void write_gset_file(const std::string& path,
                     const problems::MaxCutInstance& inst) {
  std::ofstream out(path);
  DABS_CHECK(out.good(), "gset: cannot open file for writing " + path);
  write_gset(out, inst);
}

}  // namespace dabs::io
