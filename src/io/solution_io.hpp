// Solution exchange format: persist best solutions with their energies so
// runs can be resumed / cross-checked (e.g. feeding a DABS solution to an
// external solver as a warm start, as the paper does with Gurobi when
// validating "potentially optimal" solutions).
//
//   solution <n> <energy>
//   <bit string of length n, '0'/'1', bit 0 first>
#pragma once

#include <iosfwd>
#include <string>

#include "qubo/types.hpp"
#include "util/bit_vector.hpp"

namespace dabs::io {

struct StoredSolution {
  BitVector solution;
  Energy energy;
};

void write_solution(std::ostream& out, const BitVector& x, Energy energy);
void write_solution_file(const std::string& path, const BitVector& x,
                         Energy energy);

StoredSolution read_solution(std::istream& in);
StoredSolution read_solution_file(const std::string& path);

}  // namespace dabs::io
