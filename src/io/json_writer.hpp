// Minimal JSON emitter for machine-readable bench/tool output.  Not a
// general JSON library: write-only, with correct string escaping and
// streaming object/array scopes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dabs::io {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  /// Scopes.  Keys are required inside objects, forbidden inside arrays.
  JsonWriter& begin_object(const std::string& key = "");
  JsonWriter& end_object();
  JsonWriter& begin_array(const std::string& key = "");
  JsonWriter& end_array();

  /// Values.  The narrow integer overloads exist so callers with int32 /
  /// uint32 fields (e.g. SolveReport::restarts) don't hit an ambiguous
  /// int64/uint64/double overload set.
  JsonWriter& value(const std::string& key, const std::string& v);
  JsonWriter& value(const std::string& key, const char* v);
  JsonWriter& value(const std::string& key, std::int64_t v);
  JsonWriter& value(const std::string& key, std::uint64_t v);
  JsonWriter& value(const std::string& key, std::int32_t v);
  JsonWriter& value(const std::string& key, std::uint32_t v);
  JsonWriter& value(const std::string& key, double v);
  JsonWriter& value(const std::string& key, bool v);

  /// Array elements.  The uint64 overload keeps full-range job ids exact
  /// (an int64 conversion would flip the top bit).
  JsonWriter& element(const std::string& v);
  JsonWriter& element(std::int64_t v);
  JsonWriter& element(std::uint64_t v);
  JsonWriter& element(double v);

  /// True once every scope is closed.
  bool complete() const noexcept { return stack_.empty() && started_; }

  static std::string escape(const std::string& s);

 private:
  enum class Scope { kObject, kArray };
  void comma_and_key(const std::string& key);

  std::ostream& out_;
  std::vector<std::pair<Scope, bool>> stack_;  // (scope, has_items)
  bool started_ = false;
};

}  // namespace dabs::io
