#include "io/json_writer.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace dabs::io {

JsonWriter::JsonWriter(std::ostream& out) : out_(out) {}

JsonWriter::~JsonWriter() {
  // Close any scopes the caller forgot; keeps output parseable even on
  // error paths.
  while (!stack_.empty()) {
    out_ << (stack_.back().first == Scope::kObject ? '}' : ']');
    stack_.pop_back();
  }
}

std::string JsonWriter::escape(const std::string& s) {
  std::ostringstream os;
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  return os.str();
}

void JsonWriter::comma_and_key(const std::string& key) {
  if (!stack_.empty()) {
    if (stack_.back().second) out_ << ',';
    stack_.back().second = true;
    if (stack_.back().first == Scope::kObject) {
      DABS_CHECK(!key.empty(), "object members require a key");
      out_ << '"' << escape(key) << "\":";
    } else {
      DABS_CHECK(key.empty(), "array elements must not carry a key");
    }
  } else {
    DABS_CHECK(!started_, "only one top-level JSON value is allowed");
    DABS_CHECK(key.empty(), "the top-level value has no key");
  }
  started_ = true;
}

JsonWriter& JsonWriter::begin_object(const std::string& key) {
  comma_and_key(key);
  out_ << '{';
  stack_.emplace_back(Scope::kObject, false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  DABS_CHECK(!stack_.empty() && stack_.back().first == Scope::kObject,
             "end_object without matching begin_object");
  out_ << '}';
  stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array(const std::string& key) {
  comma_and_key(key);
  out_ << '[';
  stack_.emplace_back(Scope::kArray, false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  DABS_CHECK(!stack_.empty() && stack_.back().first == Scope::kArray,
             "end_array without matching begin_array");
  out_ << ']';
  stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& key, const std::string& v) {
  comma_and_key(key);
  out_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& key, const char* v) {
  return value(key, std::string(v));
}

JsonWriter& JsonWriter::value(const std::string& key, std::int64_t v) {
  comma_and_key(key);
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& key, std::uint64_t v) {
  comma_and_key(key);
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& key, std::int32_t v) {
  return value(key, static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::value(const std::string& key, std::uint32_t v) {
  return value(key, static_cast<std::uint64_t>(v));
}

JsonWriter& JsonWriter::value(const std::string& key, double v) {
  comma_and_key(key);
  DABS_CHECK(std::isfinite(v), "JSON cannot represent non-finite numbers");
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& key, bool v) {
  comma_and_key(key);
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::element(const std::string& v) {
  comma_and_key("");
  out_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::element(std::int64_t v) {
  comma_and_key("");
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::element(std::uint64_t v) {
  comma_and_key("");
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::element(double v) {
  comma_and_key("");
  DABS_CHECK(std::isfinite(v), "JSON cannot represent non-finite numbers");
  out_ << v;
  return *this;
}

}  // namespace dabs::io
