// Small table/record writer used by the benchmark harness to print rows in
// the shape of the paper's tables (and optionally mirror them to a TSV
// file for plotting).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dabs::io {

class ResultsTable {
 public:
  explicit ResultsTable(std::string title);

  /// Column headers; call once before add_row.
  ResultsTable& columns(std::vector<std::string> names);

  /// One row of pre-rendered cells (use format helpers below).
  ResultsTable& add_row(std::vector<std::string> cells);

  /// Pretty-prints with aligned columns.
  void print(std::ostream& out) const;

  /// Tab-separated dump (one header line + rows).
  void write_tsv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers.
std::string fmt_energy(long long e);
std::string fmt_seconds(double s);
std::string fmt_percent(double fraction, int decimals = 1);
std::string fmt_gap(double fraction);

}  // namespace dabs::io
