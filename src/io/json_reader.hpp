// Minimal JSON parser — the read-side counterpart of json_writer.hpp.
// Parses one complete JSON text into a JsonValue tree; built for the JSONL
// batch front end (one small job object per line), not for streaming or
// huge documents.
//
// Faithful to RFC 8259 for everything the job format needs: all six value
// kinds, string escapes (\" \\ \/ \b \f \n \r \t and \uXXXX including
// surrogate pairs), and strict rejection of trailing garbage.  Numbers keep
// both views: an exact int64 when the text is integral and in range, and a
// double always.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dabs::io {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<JsonValue>;
  /// Ordered map: deterministic iteration, duplicate keys rejected at parse.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;  // null

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Checked accessors; throw std::invalid_argument on a kind mismatch
  /// (message names the expected and actual kinds).
  bool as_bool() const;
  /// Exact integer view; throws when the number was not written as an
  /// integer that fits int64 (e.g. 1.5 or 1e300).
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member or nullptr (also nullptr when this is not an object).
  const JsonValue* find(const std::string& key) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_int(std::int64_t v);
  static JsonValue make_double(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(Array v);
  static JsonValue make_object(Object v);

  const char* kind_name() const noexcept;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool int_exact_ = false;
  std::string str_;
  // Indirect so JsonValue stays movable/copyable without recursive layout.
  std::shared_ptr<const Array> array_;
  std::shared_ptr<const Object> object_;
};

/// Parses exactly one JSON value covering the whole input (surrounding
/// whitespace allowed).  Throws std::invalid_argument with a byte offset on
/// malformed input.
JsonValue parse_json(const std::string& text);

}  // namespace dabs::io
