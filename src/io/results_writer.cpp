#include "io/results_writer.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace dabs::io {

ResultsTable::ResultsTable(std::string title) : title_(std::move(title)) {}

ResultsTable& ResultsTable::columns(std::vector<std::string> names) {
  columns_ = std::move(names);
  return *this;
}

ResultsTable& ResultsTable::add_row(std::vector<std::string> cells) {
  DABS_CHECK(cells.size() == columns_.size(),
             "row width does not match column count");
  rows_.push_back(std::move(cells));
  return *this;
}

void ResultsTable::print(std::ostream& out) const {
  std::vector<std::size_t> width(columns_.size(), 0);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(width[c]) + 2)
          << cells[c];
    }
    out << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
}

void ResultsTable::write_tsv(const std::string& path) const {
  std::ofstream out(path);
  DABS_CHECK(out.good(), "cannot open TSV output " + path);
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c] << (c + 1 == cells.size() ? '\n' : '\t');
    }
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_energy(long long e) {
  // Group thousands like the paper (-33,337).
  std::string digits = std::to_string(e < 0 ? -e : e);
  std::string grouped;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) grouped.push_back(',');
    grouped.push_back(*it);
    ++count;
  }
  std::reverse(grouped.begin(), grouped.end());
  return (e < 0 ? "-" : "") + grouped;
}

std::string fmt_seconds(double s) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(s < 10 ? 3 : 1) << s << "s";
  return os.str();
}

std::string fmt_percent(double fraction, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << fraction * 100.0 << "%";
  return os.str();
}

std::string fmt_gap(double fraction) {
  std::ostringstream os;
  os << std::setprecision(3) << fraction * 100.0 << "%";
  return os.str();
}

}  // namespace dabs::io
