#include "io/solution_io.hpp"

#include <fstream>

#include "util/assert.hpp"

namespace dabs::io {

void write_solution(std::ostream& out, const BitVector& x, Energy energy) {
  out << "solution " << x.size() << ' ' << energy << '\n'
      << x.to_string() << '\n';
}

void write_solution_file(const std::string& path, const BitVector& x,
                         Energy energy) {
  std::ofstream out(path);
  DABS_CHECK(out.good(), "solution: cannot open for writing " + path);
  write_solution(out, x, energy);
}

StoredSolution read_solution(std::istream& in) {
  std::string tag;
  std::size_t n = 0;
  Energy e = 0;
  DABS_CHECK(static_cast<bool>(in >> tag >> n >> e) && tag == "solution",
             "solution: malformed header");
  std::string bits;
  DABS_CHECK(static_cast<bool>(in >> bits), "solution: missing bit string");
  DABS_CHECK(bits.size() == n, "solution: bit string length mismatch");
  return {BitVector::from_string(bits), e};
}

StoredSolution read_solution_file(const std::string& path) {
  std::ifstream in(path);
  DABS_CHECK(in.good(), "solution: cannot open " + path);
  return read_solution(in);
}

}  // namespace dabs::io
