#include "io/qubo_text.hpp"

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "qubo/qubo_builder.hpp"
#include "util/assert.hpp"

namespace dabs::io {

QuboModel read_qubo(std::istream& in) {
  std::string line;
  std::size_t n = 0, m = 0;
  bool have_header = false;
  std::unique_ptr<QuboBuilder> builder;
  std::size_t quadratic_seen = 0;

  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;  // blank / comment line
    if (!have_header) {
      DABS_CHECK(tag == "qubo", "qubo: expected 'qubo <n> <edges>' header");
      DABS_CHECK(static_cast<bool>(ls >> n >> m), "qubo: malformed header");
      DABS_CHECK(n > 0, "qubo: empty model");
      builder = std::make_unique<QuboBuilder>(n);
      have_header = true;
      continue;
    }
    if (tag == "d") {
      long long i = 0, w = 0;
      DABS_CHECK(static_cast<bool>(ls >> i >> w), "qubo: malformed 'd' line");
      builder->add_linear(static_cast<VarIndex>(i), static_cast<Weight>(w));
    } else if (tag == "q") {
      long long i = 0, j = 0, w = 0;
      DABS_CHECK(static_cast<bool>(ls >> i >> j >> w),
                 "qubo: malformed 'q' line");
      builder->add_quadratic(static_cast<VarIndex>(i),
                             static_cast<VarIndex>(j),
                             static_cast<Weight>(w));
      ++quadratic_seen;
    } else {
      DABS_CHECK(false, "qubo: unknown line tag '" + tag + "'");
    }
  }
  DABS_CHECK(have_header, "qubo: missing header");
  DABS_CHECK(quadratic_seen == m,
             "qubo: header edge count does not match 'q' lines");
  return builder->build();
}

QuboModel read_qubo_file(const std::string& path) {
  std::ifstream in(path);
  DABS_CHECK(in.good(), "qubo: cannot open file " + path);
  return read_qubo(in);
}

void write_qubo(std::ostream& out, const QuboModel& model) {
  out << "qubo " << model.size() << ' ' << model.edge_count() << '\n';
  for (VarIndex i = 0; i < model.size(); ++i) {
    if (model.diag(i) != 0) out << "d " << i << ' ' << model.diag(i) << '\n';
  }
  for (VarIndex i = 0; i < model.size(); ++i) {
    const auto nbrs = model.neighbors(i);
    const auto w = model.weights(i);
    for (std::size_t t = 0; t < nbrs.size(); ++t) {
      if (nbrs[t] > i) out << "q " << i << ' ' << nbrs[t] << ' ' << w[t] << '\n';
    }
  }
}

void write_qubo_file(const std::string& path, const QuboModel& model) {
  std::ofstream out(path);
  DABS_CHECK(out.good(), "qubo: cannot open file for writing " + path);
  write_qubo(out, model);
}

}  // namespace dabs::io
