// QAPLIB .dat format: the instance size n followed by the n x n flow matrix
// and the n x n distance matrix, whitespace-separated.  Lets users drop in
// real tai20a/tho30/nug30 files next to the built-in generators.
#pragma once

#include <iosfwd>
#include <string>

#include "problems/qap.hpp"

namespace dabs::io {

/// Parses a QAPLIB stream; throws std::invalid_argument on malformed input.
problems::QapInstance read_qaplib(std::istream& in,
                                  std::string name = "qaplib");

problems::QapInstance read_qaplib_file(const std::string& path);

void write_qaplib(std::ostream& out, const problems::QapInstance& inst);
void write_qaplib_file(const std::string& path,
                       const problems::QapInstance& inst);

}  // namespace dabs::io
