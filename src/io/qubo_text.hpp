// Simple textual QUBO exchange format:
//
//   qubo <n> <edge-count>
//   d <i> <w>        # diagonal term W_{i,i}
//   q <i> <j> <w>    # quadratic term W_{i,j}, i != j
//
// 0-based indices, '#' comments and blank lines allowed.
#pragma once

#include <iosfwd>
#include <string>

#include "qubo/qubo_model.hpp"

namespace dabs::io {

QuboModel read_qubo(std::istream& in);
QuboModel read_qubo_file(const std::string& path);

void write_qubo(std::ostream& out, const QuboModel& model);
void write_qubo_file(const std::string& path, const QuboModel& model);

}  // namespace dabs::io
