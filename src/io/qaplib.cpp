#include "io/qaplib.hpp"

#include <fstream>

#include "util/assert.hpp"

namespace dabs::io {

problems::QapInstance read_qaplib(std::istream& in, std::string name) {
  std::size_t n = 0;
  DABS_CHECK(static_cast<bool>(in >> n), "qaplib: missing size header");
  DABS_CHECK(n >= 2, "qaplib: instance smaller than 2");
  problems::QapInstance inst;
  inst.n = n;
  inst.name = std::move(name);
  inst.flow.resize(n * n);
  inst.dist.resize(n * n);
  // QAPLIB convention: flow matrix A first, then distance matrix B.
  for (auto& v : inst.flow) {
    DABS_CHECK(static_cast<bool>(in >> v), "qaplib: truncated flow matrix");
  }
  for (auto& v : inst.dist) {
    DABS_CHECK(static_cast<bool>(in >> v),
               "qaplib: truncated distance matrix");
  }
  return inst;
}

problems::QapInstance read_qaplib_file(const std::string& path) {
  std::ifstream in(path);
  DABS_CHECK(in.good(), "qaplib: cannot open file " + path);
  const auto slash = path.find_last_of('/');
  return read_qaplib(in, slash == std::string::npos
                             ? path
                             : path.substr(slash + 1));
}

void write_qaplib(std::ostream& out, const problems::QapInstance& inst) {
  out << inst.n << "\n\n";
  for (std::size_t i = 0; i < inst.n; ++i) {
    for (std::size_t j = 0; j < inst.n; ++j) {
      out << inst.flow[i * inst.n + j] << (j + 1 == inst.n ? '\n' : ' ');
    }
  }
  out << '\n';
  for (std::size_t i = 0; i < inst.n; ++i) {
    for (std::size_t j = 0; j < inst.n; ++j) {
      out << inst.dist[i * inst.n + j] << (j + 1 == inst.n ? '\n' : ' ');
    }
  }
}

void write_qaplib_file(const std::string& path,
                       const problems::QapInstance& inst) {
  std::ofstream out(path);
  DABS_CHECK(out.good(), "qaplib: cannot open file for writing " + path);
  write_qaplib(out, inst);
}

}  // namespace dabs::io
