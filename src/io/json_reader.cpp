#include "io/json_reader.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>
#include <utility>

namespace dabs::io {

namespace {

[[noreturn]] void kind_error(const char* want, const char* have) {
  std::ostringstream os;
  os << "JSON value is " << have << ", expected " << want;
  throw std::invalid_argument(os.str());
}

}  // namespace

const char* JsonValue::kind_name() const noexcept {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return "a boolean";
    case Kind::kNumber:
      return "a number";
    case Kind::kString:
      return "a string";
    case Kind::kArray:
      return "an array";
    case Kind::kObject:
      return "an object";
  }
  return "?";
}

bool JsonValue::as_bool() const {
  if (!is_bool()) kind_error("a boolean", kind_name());
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  if (!is_number()) kind_error("a number", kind_name());
  if (!int_exact_) {
    std::ostringstream os;
    os << "JSON number " << num_ << " is not an exact 64-bit integer";
    throw std::invalid_argument(os.str());
  }
  return int_;
}

double JsonValue::as_double() const {
  if (!is_number()) kind_error("a number", kind_name());
  return num_;
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) kind_error("a string", kind_name());
  return str_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) kind_error("an array", kind_name());
  return *array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) kind_error("an object", kind_name());
  return *object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_int(std::int64_t v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.int_ = v;
  out.int_exact_ = true;
  out.num_ = static_cast<double>(v);
  return out;
}

JsonValue JsonValue::make_double(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.num_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.str_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array(Array v) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::make_shared<const Array>(std::move(v));
  return out;
}

JsonValue JsonValue::make_object(Object v) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::make_shared<const Object>(std::move(v));
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue run() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream os;
    os << "JSON parse error at byte " << pos_ << ": " << what;
    throw std::invalid_argument(os.str());
  }

  bool eof() const noexcept { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char next() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (eof() || next() != *p) fail(std::string("expected '") + lit + "'");
    }
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    JsonValue out;
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        expect_literal("null");
        out = JsonValue::make_null();
        break;
      case 't':
        expect_literal("true");
        out = JsonValue::make_bool(true);
        break;
      case 'f':
        expect_literal("false");
        out = JsonValue::make_bool(false);
        break;
      case '"':
        out = JsonValue::make_string(parse_string());
        break;
      case '[':
        out = parse_array();
        break;
      case '{':
        out = parse_object();
        break;
      default:
        out = parse_number();
    }
    --depth_;
    return out;
  }

  JsonValue parse_array() {
    next();  // '['
    JsonValue::Array items;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      skip_ws();
      items.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue::make_array(std::move(items));
  }

  JsonValue parse_object() {
    next();  // '{'
    JsonValue::Object members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected string key in object");
      std::string key = parse_string();
      skip_ws();
      if (next() != ':') fail("expected ':' after object key");
      skip_ws();
      JsonValue value = parse_value();
      if (!members.emplace(std::move(key), std::move(value)).second) {
        fail("duplicate object key");
      }
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue::make_object(std::move(members));
  }

  std::string parse_string() {
    next();  // '"'
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (next() != '\\' || next() != 'u') {
              fail("unpaired UTF-16 surrogate");
            }
            const std::uint32_t lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape sequence");
      }
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return v;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("invalid JSON value");
    }
    bool integral = true;
    // RFC 8259 int rule: a single '0', or a 1-9-led digit run — no
    // leading zeros.
    if (peek() == '0') {
      ++pos_;
      if (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("leading zeros are not allowed");
      }
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      integral = false;
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required after decimal point");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required in exponent");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (integral) {
      std::int64_t iv = 0;
      const auto [ptr, ec] = std::from_chars(first, last, iv);
      if (ec == std::errc{} && ptr == last) return JsonValue::make_int(iv);
      // Integral text out of int64 range: fall through to the double view.
    }
    double dv = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, dv);
    if (ec != std::errc{} || ptr != last || !std::isfinite(dv)) {
      fail("number out of range");
    }
    return JsonValue::make_double(dv);
  }

  static constexpr int kMaxDepth = 64;

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).run(); }

}  // namespace dabs::io
