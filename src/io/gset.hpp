// Gset MaxCut file format (Ye's collection): a header line "n m" followed
// by m lines "u v w" with 1-based node indices.  Lets users drop in the
// real G22/G39 files next to the built-in generators.
#pragma once

#include <iosfwd>
#include <string>

#include "problems/maxcut.hpp"

namespace dabs::io {

/// Parses a Gset stream; throws std::invalid_argument on malformed input.
problems::MaxCutInstance read_gset(std::istream& in, std::string name = "gset");

/// Reads a Gset file from disk.
problems::MaxCutInstance read_gset_file(const std::string& path);

/// Writes an instance in Gset format.
void write_gset(std::ostream& out, const problems::MaxCutInstance& inst);
void write_gset_file(const std::string& path,
                     const problems::MaxCutInstance& inst);

}  // namespace dabs::io
