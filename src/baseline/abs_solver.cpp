#include "baseline/abs_solver.hpp"

namespace dabs {

SolverConfig make_abs_config(SolverConfig base) {
  base.algorithms = {MainSearch::kCyclicMin};
  base.operations = {GeneticOp::kMutateCrossover};
  base.explore_prob = 0.0;
  base.restart_on_merge = false;
  return base;
}

}  // namespace dabs
