#include "baseline/tabu_search.hpp"

#include <limits>

#include "ga/genetic_ops.hpp"
#include "qubo/search_state.hpp"
#include "search/tabu_list.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace dabs {

TabuSearch::TabuSearch(TabuSearchParams params) : params_(params) {
  DABS_CHECK(params_.iterations > 0, "at least one iteration");
}

BaselineResult TabuSearch::solve(const QuboModel& model) const {
  Stopwatch clock;
  Rng rng(params_.seed);
  SearchState state(model);
  state.reset_to(random_bit_vector(model.size(), rng));
  TabuList tabu(model.size(), params_.tenure);
  const auto n = static_cast<VarIndex>(model.size());

  for (std::uint64_t it = 0; it < params_.iterations; ++it) {
    const std::uint64_t now = state.flip_count();
    Energy best_d = std::numeric_limits<Energy>::max();
    VarIndex pick = n;
    for (VarIndex k = 0; k < n; ++k) {
      const Energy d = state.delta(k);
      const bool aspiration =
          state.energy() + d < state.best_energy();
      if (!aspiration && !tabu.allowed(k, now)) continue;
      if (d < best_d) {
        best_d = d;
        pick = k;
      }
    }
    if (pick == n) pick = static_cast<VarIndex>(rng.next_index(n));
    state.scan();  // keep BEST in sync with 1-bit neighborhoods
    tabu.record(pick, now + 1);
    state.flip(pick);
    if (params_.time_limit_seconds > 0 && (it & 255) == 0 &&
        clock.elapsed_seconds() >= params_.time_limit_seconds) {
      break;
    }
  }

  return {state.best(), state.best_energy(), state.flip_count(),
          clock.elapsed_seconds()};
}

}  // namespace dabs
