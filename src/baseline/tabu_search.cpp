#include "baseline/tabu_search.hpp"

#include <limits>

#include "evolve/genetic_ops.hpp"
#include "qubo/search_state.hpp"
#include "search/tabu_list.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace dabs {

TabuSearch::TabuSearch(TabuSearchParams params) : params_(params) {
  DABS_CHECK(params_.iterations > 0, "at least one iteration");
}

BaselineResult TabuSearch::solve(const QuboModel& model) const {
  StopCondition stop;
  stop.time_limit_seconds = params_.time_limit_seconds;
  StopContext ctx(stop);
  return run(model, params_.seed, {}, ctx);
}

SolveReport TabuSearch::solve(const SolveRequest& request) {
  const QuboModel& model = request_model(request);
  StopContext ctx =
      StopContext::for_request(request, params_.time_limit_seconds);
  BaselineResult r = run(model, request.seed.value_or(params_.seed),
                         request.warm_start, ctx);
  return make_report(name(), std::move(r), ctx);
}

BaselineResult TabuSearch::run(const QuboModel& model, std::uint64_t seed,
                               const std::vector<BitVector>& warm_start,
                               StopContext& ctx) const {
  Rng rng(seed);
  SearchState state(model);
  state.reset_to(warm_start.empty() ? random_bit_vector(model.size(), rng)
                                    : warm_start.front());
  TabuList tabu(model.size(), params_.tenure);
  const auto n = static_cast<VarIndex>(model.size());
  Energy best_seen = kInfiniteEnergy;

  // StopContext is polled every iteration: one iteration scans all n
  // deltas, so the clock read is noise and the run honors tight budgets
  // at the same granularity as the other baselines (no 256-step stride).
  for (std::uint64_t it = 0; it < params_.iterations && !ctx.should_stop();
       ++it) {
    const std::uint64_t now = state.flip_count();
    Energy best_d = std::numeric_limits<Energy>::max();
    VarIndex pick = n;
    for (VarIndex k = 0; k < n; ++k) {
      const Energy d = state.delta(k);
      const bool aspiration =
          state.energy() + d < state.best_energy();
      if (!aspiration && !tabu.allowed(k, now)) continue;
      if (d < best_d) {
        best_d = d;
        pick = k;
      }
    }
    if (pick == n) pick = static_cast<VarIndex>(rng.next_index(n));
    state.scan();  // keep BEST in sync with 1-bit neighborhoods
    tabu.record(pick, now + 1);
    state.flip(pick);
    ctx.add_work(1);
    if (state.best_energy() < best_seen) {
      best_seen = state.best_energy();
      ctx.note_best(best_seen);
    }
  }

  return {state.best(), state.best_energy(), state.flip_count(),
          ctx.elapsed_seconds()};
}

}  // namespace dabs
