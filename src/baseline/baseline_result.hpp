// Common result type for the comparator solvers (the repo's stand-ins for
// Gurobi / D-Wave rows in Tables II-IV; see DESIGN.md §2).
#pragma once

#include <cstdint>

#include "qubo/types.hpp"
#include "util/bit_vector.hpp"

namespace dabs {

struct BaselineResult {
  BitVector best_solution;
  Energy best_energy = kInfiniteEnergy;
  std::uint64_t flips = 0;
  double elapsed_seconds = 0.0;
};

/// Relative gap of `found` above a reference optimum, as the paper reports
/// it (both energies negative; gap = (found - ref) / |ref|).
double energy_gap(Energy found, Energy reference);

}  // namespace dabs
