#include "baseline/subqubo_solver.hpp"

#include <algorithm>
#include <numeric>

#include "baseline/exhaustive.hpp"
#include "evolve/genetic_ops.hpp"
#include "qubo/search_state.hpp"
#include "qubo/transforms.hpp"
#include "rng/seeder.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace dabs {

SubQuboSolver::SubQuboSolver(SubQuboParams params) : params_(params) {
  DABS_CHECK(params_.subset_size >= 2 && params_.subset_size <= 26,
             "subset size must be in [2, 26] for exact solving");
  DABS_CHECK(params_.iterations > 0, "at least one iteration");
  DABS_CHECK(params_.restarts > 0, "at least one restart");
}

namespace {

/// Samples `k` distinct indices, biased toward small Delta (rank-weighted:
/// take the k smallest among 2k uniformly drawn candidates).
std::vector<VarIndex> biased_subset(const SearchState& state, std::size_t k,
                                    Rng& rng) {
  const auto n = static_cast<VarIndex>(state.size());
  std::vector<VarIndex> cand;
  cand.reserve(2 * k);
  std::vector<bool> taken(n, false);
  while (cand.size() < std::min<std::size_t>(2 * k, n)) {
    const auto v = static_cast<VarIndex>(rng.next_index(n));
    if (!taken[v]) {
      taken[v] = true;
      cand.push_back(v);
    }
  }
  std::sort(cand.begin(), cand.end(), [&](VarIndex a, VarIndex b) {
    return state.delta(a) < state.delta(b);
  });
  cand.resize(std::min<std::size_t>(k, cand.size()));
  return cand;
}

}  // namespace

BaselineResult SubQuboSolver::solve(const QuboModel& model) const {
  StopCondition stop;
  stop.time_limit_seconds = params_.time_limit_seconds;
  StopContext ctx(stop);
  return run(model, params_.seed, {}, ctx);
}

SolveReport SubQuboSolver::solve(const SolveRequest& request) {
  const QuboModel& model = request_model(request);
  StopContext ctx =
      StopContext::for_request(request, params_.time_limit_seconds);
  BaselineResult r = run(model, request.seed.value_or(params_.seed),
                         request.warm_start, ctx);
  return make_report(name(), std::move(r), ctx);
}

BaselineResult SubQuboSolver::run(const QuboModel& model, std::uint64_t seed,
                                  const std::vector<BitVector>& warm_start,
                                  StopContext& ctx) const {
  MersenneSeeder seeder(seed);
  const std::size_t k =
      std::min<std::size_t>(params_.subset_size, model.size());
  const ExhaustiveSolver exact(26);

  BaselineResult result;
  for (std::uint64_t r = 0; r < params_.restarts; ++r) {
    Rng rng = seeder.next_rng();
    SearchState state(model);
    state.reset_to(r < warm_start.size()
                       ? warm_start[r]
                       : random_bit_vector(model.size(), rng));

    for (std::uint64_t it = 0; it < params_.iterations; ++it) {
      if (ctx.should_stop()) break;
      const std::vector<VarIndex> subset = biased_subset(state, k, rng);
      const SubQubo sub = extract_subqubo(model, state.solution(), subset);
      const BaselineResult best_sub = exact.solve(sub.model);
      const Energy candidate = best_sub.best_energy + sub.offset;
      if (candidate < state.energy()) {
        state.reset_to(
            apply_subsolution(state.solution(), sub, best_sub.best_solution));
      }
      result.flips += best_sub.flips;
      ctx.add_work(best_sub.flips);
      if (state.best_energy() < result.best_energy) {
        result.best_energy = state.best_energy();
        result.best_solution = state.best();
        ctx.note_best(result.best_energy);
      }
    }
    if (state.best_energy() < result.best_energy) {
      result.best_energy = state.best_energy();
      result.best_solution = state.best();
      ctx.note_best(result.best_energy);
    }
    if (ctx.should_stop()) break;
  }
  result.elapsed_seconds = ctx.elapsed_seconds();
  return result;
}

}  // namespace dabs
