// Exact solver by Gray-code enumeration: successive solutions differ in one
// bit, so the incremental machinery evaluates all 2^n vectors at O(deg) per
// step.  Practical to ~n = 26; the tests use it as ground truth for the
// problem reductions and the heuristic solvers.
//
// With `threads` > 1 the search space is partitioned by fixing the top
// log2(threads) bits per worker, each enumerating its 2^{n-p} suffix block
// independently — the scheme of the authors' work-time-optimal parallel
// exhaustive search (paper reference [8]).
#pragma once

#include <atomic>
#include <cstdint>

#include "baseline/baseline_result.hpp"
#include "core/solve_report.hpp"
#include "core/solver.hpp"
#include "qubo/qubo_model.hpp"

namespace dabs {

class ExhaustiveSolver : public Solver {
 public:
  /// Refuses models with more than `max_bits` variables (guard against
  /// accidental 2^2000 enumerations).  `threads` is rounded down to a
  /// power of two and capped at 2^{n-1}.
  explicit ExhaustiveSolver(std::size_t max_bits = 26,
                            std::uint32_t threads = 1)
      : max_bits_(max_bits), threads_(threads == 0 ? 1 : threads) {}

  /// Legacy entry: runs the enumeration to completion.
  BaselineResult solve(const QuboModel& model) const;

  /// Unified-interface entry.  An exact enumerator ignores seeds and warm
  /// starts; a time limit, work budget, or fired stop token ends the run
  /// early with the best-so-far (the report's `cancelled`/partial flips
  /// say so).  Workers poll the stop protocol every 8192 steps.
  SolveReport solve(const SolveRequest& request) override;

  std::string_view name() const noexcept override { return "exhaustive"; }

 private:
  /// `ctx` may be null (no early exit); workers use the thread-safe
  /// polling subset plus the shared `work_done` step counter only.
  BaselineResult solve_block(const QuboModel& model, std::uint64_t prefix,
                             std::size_t prefix_bits, const StopContext* ctx,
                             std::atomic<std::uint64_t>* work_done) const;
  BaselineResult run(const QuboModel& model, const StopContext* ctx) const;

  std::size_t max_bits_;
  std::uint32_t threads_;
};

}  // namespace dabs
