// Exact solver by Gray-code enumeration: successive solutions differ in one
// bit, so the incremental machinery evaluates all 2^n vectors at O(deg) per
// step.  Practical to ~n = 26; the tests use it as ground truth for the
// problem reductions and the heuristic solvers.
//
// With `threads` > 1 the search space is partitioned by fixing the top
// log2(threads) bits per worker, each enumerating its 2^{n-p} suffix block
// independently — the scheme of the authors' work-time-optimal parallel
// exhaustive search (paper reference [8]).
#pragma once

#include <cstdint>

#include "baseline/baseline_result.hpp"
#include "qubo/qubo_model.hpp"

namespace dabs {

class ExhaustiveSolver {
 public:
  /// Refuses models with more than `max_bits` variables (guard against
  /// accidental 2^2000 enumerations).  `threads` is rounded down to a
  /// power of two and capped at 2^{n-1}.
  explicit ExhaustiveSolver(std::size_t max_bits = 26,
                            std::uint32_t threads = 1)
      : max_bits_(max_bits), threads_(threads == 0 ? 1 : threads) {}

  BaselineResult solve(const QuboModel& model) const;

 private:
  BaselineResult solve_block(const QuboModel& model, std::uint64_t prefix,
                             std::size_t prefix_bits) const;

  std::size_t max_bits_;
  std::uint32_t threads_;
};

}  // namespace dabs
