// Multistart greedy descent comparator: random start -> greedy to a local
// minimum, repeated.  The weakest sensible baseline; useful for showing the
// value of everything above plain descent.
#pragma once

#include <cstdint>

#include "baseline/baseline_result.hpp"
#include "qubo/qubo_model.hpp"

namespace dabs {

struct GreedyRestartParams {
  std::uint64_t restarts = 100;
  std::uint64_t seed = 1;
  double time_limit_seconds = 0.0;  // 0 = no limit
};

class GreedyRestart {
 public:
  explicit GreedyRestart(GreedyRestartParams params = {});

  BaselineResult solve(const QuboModel& model) const;

 private:
  GreedyRestartParams params_;
};

}  // namespace dabs
