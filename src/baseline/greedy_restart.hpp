// Multistart greedy descent comparator: random start -> greedy to a local
// minimum, repeated.  The weakest sensible baseline; useful for showing the
// value of everything above plain descent.
#pragma once

#include <cstdint>

#include "baseline/baseline_result.hpp"
#include "core/solve_report.hpp"
#include "core/solver.hpp"
#include "qubo/qubo_model.hpp"

namespace dabs {

struct GreedyRestartParams {
  std::uint64_t restarts = 100;
  std::uint64_t seed = 1;
  double time_limit_seconds = 0.0;  // 0 = no limit
};

class GreedyRestart : public Solver {
 public:
  explicit GreedyRestart(GreedyRestartParams params = {});

  /// Legacy entry: budget and seed come from GreedyRestartParams alone.
  BaselineResult solve(const QuboModel& model) const;

  /// Unified-interface entry: request stop/seed/warm-start/observer win
  /// over the params; restart r descends from warm_start[r] when provided.
  SolveReport solve(const SolveRequest& request) override;

  std::string_view name() const noexcept override { return "greedy-restart"; }

 private:
  BaselineResult run(const QuboModel& model, std::uint64_t seed,
                     const std::vector<BitVector>& warm_start,
                     StopContext& ctx) const;

  GreedyRestartParams params_;
};

}  // namespace dabs
