// SubQUBO hybrid comparator (Atobe, Tawada, Togawa [37] — the solver the
// paper reports failing to find optimal tai20a/tho30 solutions):
// iteratively pick a subset of variables, clamp the rest at the incumbent,
// solve the induced sub-QUBO *exactly*, and accept the (never-worse)
// result.  Subsets are sampled randomly with a bias toward variables whose
// Delta is small (most likely to participate in an improvement).
#pragma once

#include <cstdint>

#include "baseline/baseline_result.hpp"
#include "core/solve_report.hpp"
#include "core/solver.hpp"
#include "qubo/qubo_model.hpp"

namespace dabs {

struct SubQuboParams {
  std::uint32_t subset_size = 16;   // exact-solve width (<= 26)
  std::uint64_t iterations = 200;   // clamp/solve/accept rounds
  std::uint64_t restarts = 1;       // independent incumbent restarts
  std::uint64_t seed = 1;
  double time_limit_seconds = 0.0;  // 0 = no limit
};

class SubQuboSolver : public Solver {
 public:
  explicit SubQuboSolver(SubQuboParams params = {});

  /// Legacy entry: budget and seed come from SubQuboParams alone.
  BaselineResult solve(const QuboModel& model) const;

  /// Unified-interface entry: request stop/seed/warm-start/observer win
  /// over the params; restart r's incumbent is warm_start[r] when provided.
  SolveReport solve(const SolveRequest& request) override;

  std::string_view name() const noexcept override { return "subqubo"; }

 private:
  BaselineResult run(const QuboModel& model, std::uint64_t seed,
                     const std::vector<BitVector>& warm_start,
                     StopContext& ctx) const;

  SubQuboParams params_;
};

}  // namespace dabs
