// Simulated annealing comparator on the incremental QUBO machinery.
// Standard single-spin Metropolis sweeps with a geometric temperature
// schedule; the initial temperature defaults to the mean |Delta| of a
// random start so early sweeps accept most moves.
//
// Serves as the repo's stand-in for the external reference solvers in the
// paper's tables (see DESIGN.md §2) and generates the Fig. 6 style
// time-limited solution histograms.
#pragma once

#include <cstdint>

#include "baseline/baseline_result.hpp"
#include "core/solve_report.hpp"
#include "core/solver.hpp"
#include "qubo/qubo_model.hpp"

namespace dabs {

struct SaParams {
  std::uint64_t sweeps = 1000;      // Metropolis sweeps (n flips attempted each)
  double t_initial = 0.0;           // 0 = auto-calibrate from mean |Delta|
  double t_final = 0.5;
  std::uint64_t seed = 1;
  double time_limit_seconds = 0.0;  // 0 = no limit
  std::uint64_t restarts = 1;       // independent annealing runs
};

class SimulatedAnnealing : public Solver {
 public:
  explicit SimulatedAnnealing(SaParams params = {});

  /// Legacy entry: budget and seed come from SaParams alone.
  BaselineResult solve(const QuboModel& model) const;

  /// Unified-interface entry: request stop/seed/warm-start/observer win
  /// over the params; restart r starts from warm_start[r] when provided.
  SolveReport solve(const SolveRequest& request) override;

  std::string_view name() const noexcept override { return "sa"; }

 private:
  BaselineResult run(const QuboModel& model, std::uint64_t seed,
                     const std::vector<BitVector>& warm_start,
                     StopContext& ctx) const;

  SaParams params_;
};

}  // namespace dabs
