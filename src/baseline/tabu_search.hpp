// Classic best-improvement tabu search comparator: every iteration flips
// the minimum-Delta non-tabu bit (aspiration: a tabu bit may be flipped when
// it would yield a new global best).  A deliberately conventional contrast
// to DABS's bulk/GA architecture.
#pragma once

#include <cstdint>

#include "baseline/baseline_result.hpp"
#include "core/solve_report.hpp"
#include "core/solver.hpp"
#include "qubo/qubo_model.hpp"

namespace dabs {

struct TabuSearchParams {
  std::uint64_t iterations = 100000;  // total flips
  std::uint32_t tenure = 16;
  std::uint64_t seed = 1;
  double time_limit_seconds = 0.0;    // 0 = no limit
};

class TabuSearch : public Solver {
 public:
  explicit TabuSearch(TabuSearchParams params = {});

  /// Legacy entry: budget and seed come from TabuSearchParams alone.
  BaselineResult solve(const QuboModel& model) const;

  /// Unified-interface entry: request stop/seed/warm-start/observer win
  /// over the params; the walk starts from warm_start[0] when provided.
  SolveReport solve(const SolveRequest& request) override;

  std::string_view name() const noexcept override { return "tabu"; }

 private:
  BaselineResult run(const QuboModel& model, std::uint64_t seed,
                     const std::vector<BitVector>& warm_start,
                     StopContext& ctx) const;

  TabuSearchParams params_;
};

}  // namespace dabs
