// Classic best-improvement tabu search comparator: every iteration flips
// the minimum-Delta non-tabu bit (aspiration: a tabu bit may be flipped when
// it would yield a new global best).  A deliberately conventional contrast
// to DABS's bulk/GA architecture.
#pragma once

#include <cstdint>

#include "baseline/baseline_result.hpp"
#include "qubo/qubo_model.hpp"

namespace dabs {

struct TabuSearchParams {
  std::uint64_t iterations = 100000;  // total flips
  std::uint32_t tenure = 16;
  std::uint64_t seed = 1;
  double time_limit_seconds = 0.0;    // 0 = no limit
};

class TabuSearch {
 public:
  explicit TabuSearch(TabuSearchParams params = {});

  BaselineResult solve(const QuboModel& model) const;

 private:
  TabuSearchParams params_;
};

}  // namespace dabs
