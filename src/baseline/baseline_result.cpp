#include "baseline/baseline_result.hpp"

#include <cmath>

namespace dabs {

double energy_gap(Energy found, Energy reference) {
  if (reference == 0) return found == 0 ? 0.0 : 1.0;
  return double(found - reference) / std::abs(double(reference));
}

}  // namespace dabs
