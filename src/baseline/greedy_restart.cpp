#include "baseline/greedy_restart.hpp"

#include "ga/genetic_ops.hpp"
#include "qubo/search_state.hpp"
#include "search/greedy.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace dabs {

GreedyRestart::GreedyRestart(GreedyRestartParams params) : params_(params) {
  DABS_CHECK(params_.restarts > 0, "at least one restart");
}

BaselineResult GreedyRestart::solve(const QuboModel& model) const {
  Stopwatch clock;
  Rng rng(params_.seed);
  SearchState state(model);
  BaselineResult result;

  for (std::uint64_t r = 0; r < params_.restarts; ++r) {
    state.reset_to(random_bit_vector(model.size(), rng));
    greedy_descent(state);
    if (state.best_energy() < result.best_energy) {
      result.best_energy = state.best_energy();
      result.best_solution = state.best();
    }
    result.flips += state.flip_count();
    if (params_.time_limit_seconds > 0 &&
        clock.elapsed_seconds() >= params_.time_limit_seconds) {
      break;
    }
  }
  result.elapsed_seconds = clock.elapsed_seconds();
  return result;
}

}  // namespace dabs
