#include "baseline/greedy_restart.hpp"

#include "evolve/genetic_ops.hpp"
#include "qubo/search_state.hpp"
#include "search/greedy.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace dabs {

GreedyRestart::GreedyRestart(GreedyRestartParams params) : params_(params) {
  DABS_CHECK(params_.restarts > 0, "at least one restart");
}

BaselineResult GreedyRestart::solve(const QuboModel& model) const {
  StopCondition stop;
  stop.time_limit_seconds = params_.time_limit_seconds;
  StopContext ctx(stop);
  return run(model, params_.seed, {}, ctx);
}

SolveReport GreedyRestart::solve(const SolveRequest& request) {
  const QuboModel& model = request_model(request);
  StopContext ctx =
      StopContext::for_request(request, params_.time_limit_seconds);
  BaselineResult r = run(model, request.seed.value_or(params_.seed),
                         request.warm_start, ctx);
  return make_report(name(), std::move(r), ctx);
}

BaselineResult GreedyRestart::run(const QuboModel& model, std::uint64_t seed,
                                  const std::vector<BitVector>& warm_start,
                                  StopContext& ctx) const {
  Rng rng(seed);
  SearchState state(model);
  BaselineResult result;

  for (std::uint64_t r = 0; r < params_.restarts; ++r) {
    state.reset_to(r < warm_start.size()
                       ? warm_start[r]
                       : random_bit_vector(model.size(), rng));
    greedy_descent(state);
    ctx.add_work(state.flip_count());
    if (state.best_energy() < result.best_energy) {
      result.best_energy = state.best_energy();
      result.best_solution = state.best();
      ctx.note_best(result.best_energy);
    }
    result.flips += state.flip_count();
    if (ctx.should_stop()) break;
  }
  result.elapsed_seconds = ctx.elapsed_seconds();
  return result;
}

}  // namespace dabs
