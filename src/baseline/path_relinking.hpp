// Greedy-restart + path relinking comparator: an elite set of local minima
// is built by multistart greedy descent; then random elite pairs are
// relinked by walking one endpoint to the other with the Straight search,
// greedily polishing the best point found on each path.  A mid-strength
// classical baseline between GreedyRestart and full DABS.
#pragma once

#include <cstdint>

#include "baseline/baseline_result.hpp"
#include "core/solve_report.hpp"
#include "core/solver.hpp"
#include "qubo/qubo_model.hpp"

namespace dabs {

struct PathRelinkingParams {
  std::uint64_t elite_size = 10;
  std::uint64_t relinks = 100;
  std::uint64_t seed = 1;
  double time_limit_seconds = 0.0;  // 0 = no limit
};

class PathRelinking : public Solver {
 public:
  explicit PathRelinking(PathRelinkingParams params = {});

  /// Legacy entry: budget and seed come from PathRelinkingParams alone.
  BaselineResult solve(const QuboModel& model) const;

  /// Unified-interface entry: request stop/seed/warm-start/observer win
  /// over the params; warm starts seed the elite set (after polishing).
  SolveReport solve(const SolveRequest& request) override;

  std::string_view name() const noexcept override { return "path-relinking"; }

 private:
  BaselineResult run(const QuboModel& model, std::uint64_t seed,
                     const std::vector<BitVector>& warm_start,
                     StopContext& ctx) const;

  PathRelinkingParams params_;
};

}  // namespace dabs
