#include "baseline/path_relinking.hpp"

#include <algorithm>
#include <vector>

#include "ga/genetic_ops.hpp"
#include "qubo/search_state.hpp"
#include "search/greedy.hpp"
#include "search/straight.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace dabs {

PathRelinking::PathRelinking(PathRelinkingParams params) : params_(params) {
  DABS_CHECK(params_.elite_size >= 2, "relinking needs at least two elites");
  DABS_CHECK(params_.relinks > 0, "at least one relink");
}

BaselineResult PathRelinking::solve(const QuboModel& model) const {
  Stopwatch clock;
  Rng rng(params_.seed);
  SearchState state(model);
  BaselineResult result;

  auto out_of_time = [&] {
    return params_.time_limit_seconds > 0 &&
           clock.elapsed_seconds() >= params_.time_limit_seconds;
  };
  auto consider = [&](const BitVector& x, Energy e) {
    if (e < result.best_energy) {
      result.best_energy = e;
      result.best_solution = x;
    }
  };

  // Phase 1: build the elite set from greedy multistart.
  std::vector<std::pair<BitVector, Energy>> elite;
  for (std::uint64_t r = 0; r < params_.elite_size && !out_of_time(); ++r) {
    state.reset_to(random_bit_vector(model.size(), rng));
    greedy_descent(state);
    elite.emplace_back(state.best(), state.best_energy());
    consider(state.best(), state.best_energy());
    result.flips += state.flip_count();
  }
  if (elite.size() < 2) {
    result.elapsed_seconds = clock.elapsed_seconds();
    return result;
  }

  // Phase 2: relink random elite pairs; polish the path's best point.
  for (std::uint64_t r = 0; r < params_.relinks && !out_of_time(); ++r) {
    const std::size_t a = rng.next_index(elite.size());
    std::size_t b = rng.next_index(elite.size() - 1);
    if (b >= a) ++b;
    state.reset_to(elite[a].first);
    straight_walk(state, elite[b].first);  // BEST tracks the whole path
    state.reset_to(state.best());
    greedy_descent(state);
    consider(state.best(), state.best_energy());
    result.flips += state.flip_count();

    // Replace the worst elite when the polished point improves on it.
    auto worst = std::max_element(
        elite.begin(), elite.end(),
        [](const auto& x, const auto& y) { return x.second < y.second; });
    if (state.best_energy() < worst->second) {
      *worst = {state.best(), state.best_energy()};
    }
  }
  result.elapsed_seconds = clock.elapsed_seconds();
  return result;
}

}  // namespace dabs
