#include "baseline/path_relinking.hpp"

#include <algorithm>
#include <vector>

#include "evolve/genetic_ops.hpp"
#include "qubo/search_state.hpp"
#include "search/greedy.hpp"
#include "search/straight.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace dabs {

PathRelinking::PathRelinking(PathRelinkingParams params) : params_(params) {
  DABS_CHECK(params_.elite_size >= 2, "relinking needs at least two elites");
  DABS_CHECK(params_.relinks > 0, "at least one relink");
}

BaselineResult PathRelinking::solve(const QuboModel& model) const {
  StopCondition stop;
  stop.time_limit_seconds = params_.time_limit_seconds;
  StopContext ctx(stop);
  return run(model, params_.seed, {}, ctx);
}

SolveReport PathRelinking::solve(const SolveRequest& request) {
  const QuboModel& model = request_model(request);
  StopContext ctx =
      StopContext::for_request(request, params_.time_limit_seconds);
  BaselineResult r = run(model, request.seed.value_or(params_.seed),
                         request.warm_start, ctx);
  return make_report(name(), std::move(r), ctx);
}

BaselineResult PathRelinking::run(const QuboModel& model, std::uint64_t seed,
                                  const std::vector<BitVector>& warm_start,
                                  StopContext& ctx) const {
  Rng rng(seed);
  SearchState state(model);
  BaselineResult result;

  auto consider = [&](const BitVector& x, Energy e) {
    if (e < result.best_energy) {
      result.best_energy = e;
      result.best_solution = x;
      ctx.note_best(e);
    }
  };

  // Phase 1: build the elite set from greedy multistart (warm starts are
  // polished into elites first, then random starts fill the remainder).
  // The first descent always runs so even a pre-fired stop token yields a
  // valid best solution.
  std::vector<std::pair<BitVector, Energy>> elite;
  for (std::uint64_t r = 0;
       r < params_.elite_size && (r == 0 || !ctx.should_stop()); ++r) {
    state.reset_to(r < warm_start.size()
                       ? warm_start[r]
                       : random_bit_vector(model.size(), rng));
    greedy_descent(state);
    ctx.add_work(state.flip_count());
    elite.emplace_back(state.best(), state.best_energy());
    consider(state.best(), state.best_energy());
    result.flips += state.flip_count();
  }
  if (elite.size() < 2) {
    result.elapsed_seconds = ctx.elapsed_seconds();
    return result;
  }

  // Phase 2: relink random elite pairs; polish the path's best point.
  for (std::uint64_t r = 0; r < params_.relinks && !ctx.should_stop(); ++r) {
    const std::size_t a = rng.next_index(elite.size());
    std::size_t b = rng.next_index(elite.size() - 1);
    if (b >= a) ++b;
    state.reset_to(elite[a].first);
    straight_walk(state, elite[b].first);  // BEST tracks the whole path
    state.reset_to(state.best());
    greedy_descent(state);
    ctx.add_work(state.flip_count());
    consider(state.best(), state.best_energy());
    result.flips += state.flip_count();

    // Replace the worst elite when the polished point improves on it.
    auto worst = std::max_element(
        elite.begin(), elite.end(),
        [](const auto& x, const auto& y) { return x.second < y.second; });
    if (state.best_energy() < worst->second) {
      *worst = {state.best(), state.best_energy()};
    }
  }
  result.elapsed_seconds = ctx.elapsed_seconds();
  return result;
}

}  // namespace dabs
