#include "baseline/simulated_annealing.hpp"

#include <cmath>

#include "ga/genetic_ops.hpp"
#include "qubo/search_state.hpp"
#include "rng/seeder.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace dabs {

double energy_gap(Energy found, Energy reference) {
  if (reference == 0) return found == 0 ? 0.0 : 1.0;
  return double(found - reference) / std::abs(double(reference));
}

SimulatedAnnealing::SimulatedAnnealing(SaParams params) : params_(params) {
  DABS_CHECK(params_.sweeps > 0, "at least one sweep");
  DABS_CHECK(params_.t_final > 0, "final temperature must be positive");
  DABS_CHECK(params_.restarts > 0, "at least one restart");
}

namespace {

double calibrate_t0(const SearchState& state) {
  // Mean |Delta| at the starting point; a classic cheap T0 heuristic.
  double sum = 0.0;
  for (const Energy d : state.deltas()) sum += std::abs(double(d));
  const double mean = sum / double(state.size());
  return mean > 0 ? mean : 1.0;
}

}  // namespace

BaselineResult SimulatedAnnealing::solve(const QuboModel& model) const {
  Stopwatch clock;
  MersenneSeeder seeder(params_.seed);
  SearchState state(model);
  BaselineResult result;
  const auto n = static_cast<VarIndex>(model.size());

  for (std::uint64_t run = 0; run < params_.restarts; ++run) {
    Rng rng = seeder.next_rng();
    state.reset_to(random_bit_vector(model.size(), rng));

    const double t0 =
        params_.t_initial > 0 ? params_.t_initial : calibrate_t0(state);
    const double tf = std::min(params_.t_final, t0);
    // Geometric schedule hitting tf on the last sweep.
    const double alpha =
        params_.sweeps > 1
            ? std::pow(tf / t0, 1.0 / double(params_.sweeps - 1))
            : 1.0;

    double temp = t0;
    bool out_of_time = false;
    for (std::uint64_t s = 0; s < params_.sweeps && !out_of_time; ++s) {
      for (VarIndex i = 0; i < n; ++i) {
        const Energy d = state.delta(i);
        if (d <= 0 || rng.next_unit() < std::exp(-double(d) / temp)) {
          state.flip(i);
        }
      }
      temp *= alpha;
      if (params_.time_limit_seconds > 0 &&
          clock.elapsed_seconds() >= params_.time_limit_seconds) {
        out_of_time = true;
      }
    }
    if (state.best_energy() < result.best_energy) {
      result.best_energy = state.best_energy();
      result.best_solution = state.best();
    }
    result.flips += state.flip_count();
    if (out_of_time) break;
  }
  result.elapsed_seconds = clock.elapsed_seconds();
  return result;
}

}  // namespace dabs
