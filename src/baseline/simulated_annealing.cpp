#include "baseline/simulated_annealing.hpp"

#include <cmath>

#include "evolve/genetic_ops.hpp"
#include "qubo/search_state.hpp"
#include "rng/seeder.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace dabs {

SimulatedAnnealing::SimulatedAnnealing(SaParams params) : params_(params) {
  DABS_CHECK(params_.sweeps > 0, "at least one sweep");
  DABS_CHECK(params_.t_final > 0, "final temperature must be positive");
  DABS_CHECK(params_.restarts > 0, "at least one restart");
}

namespace {

double calibrate_t0(const SearchState& state) {
  // Mean |Delta| at the starting point; a classic cheap T0 heuristic.
  double sum = 0.0;
  for (const Energy d : state.deltas()) sum += std::abs(double(d));
  const double mean = sum / double(state.size());
  return mean > 0 ? mean : 1.0;
}

}  // namespace

BaselineResult SimulatedAnnealing::solve(const QuboModel& model) const {
  StopCondition stop;
  stop.time_limit_seconds = params_.time_limit_seconds;
  StopContext ctx(stop);
  return run(model, params_.seed, {}, ctx);
}

SolveReport SimulatedAnnealing::solve(const SolveRequest& request) {
  const QuboModel& model = request_model(request);
  StopContext ctx =
      StopContext::for_request(request, params_.time_limit_seconds);
  BaselineResult r = run(model, request.seed.value_or(params_.seed),
                         request.warm_start, ctx);
  return make_report(name(), std::move(r), ctx);
}

BaselineResult SimulatedAnnealing::run(const QuboModel& model,
                                       std::uint64_t seed,
                                       const std::vector<BitVector>& warm_start,
                                       StopContext& ctx) const {
  MersenneSeeder seeder(seed);
  SearchState state(model);
  BaselineResult result;
  const auto n = static_cast<VarIndex>(model.size());

  // Restart 0 always runs (its first sweep at least), so even a pre-fired
  // stop token yields a valid best solution — same guarantee as the other
  // restart-style baselines.
  for (std::uint64_t r = 0;
       r < params_.restarts && (r == 0 || !ctx.should_stop()); ++r) {
    Rng rng = seeder.next_rng();
    state.reset_to(r < warm_start.size()
                       ? warm_start[r]
                       : random_bit_vector(model.size(), rng));

    const double t0 =
        params_.t_initial > 0 ? params_.t_initial : calibrate_t0(state);
    const double tf = std::min(params_.t_final, t0);
    // Geometric schedule hitting tf on the last sweep.
    const double alpha =
        params_.sweeps > 1
            ? std::pow(tf / t0, 1.0 / double(params_.sweeps - 1))
            : 1.0;

    double temp = t0;
    std::uint64_t flips_before = 0;
    for (std::uint64_t s = 0; s < params_.sweeps; ++s) {
      for (VarIndex i = 0; i < n; ++i) {
        const Energy d = state.delta(i);
        if (d <= 0 || rng.next_unit() < std::exp(-double(d) / temp)) {
          state.flip(i);
        }
      }
      temp *= alpha;
      ctx.add_work(state.flip_count() - flips_before);
      flips_before = state.flip_count();
      if (state.best_energy() < result.best_energy) {
        result.best_energy = state.best_energy();
        result.best_solution = state.best();
        ctx.note_best(result.best_energy);
      }
      if (ctx.should_stop()) break;
    }
    if (state.best_energy() < result.best_energy) {
      result.best_energy = state.best_energy();
      result.best_solution = state.best();
      ctx.note_best(result.best_energy);
    }
    result.flips += state.flip_count();
  }
  result.elapsed_seconds = ctx.elapsed_seconds();
  return result;
}

}  // namespace dabs
