// ABS baseline (paper [16] and §I-B): the authors' earlier Adaptive Bulk
// Search — the same bulk architecture but with a single search algorithm
// (CyclicMin), a single genetic operation (mutation after crossover), and
// no diversity-driven adaptation.  Implemented as a restricted DabsSolver
// configuration so the comparison isolates exactly the paper's claimed
// contribution: diversity + adaptivity.
#pragma once

#include "core/dabs_solver.hpp"

namespace dabs {

/// Restricts `base` to the ABS feature set (CyclicMin + MutateCrossover,
/// no exploration, no merged-ring restart).
SolverConfig make_abs_config(SolverConfig base = {});

class AbsSolver : public Solver {
 public:
  explicit AbsSolver(SolverConfig base = {})
      : inner_(make_abs_config(std::move(base))) {}

  const SolverConfig& config() const noexcept { return inner_.config(); }

  SolveResult solve(const QuboModel& model) { return inner_.solve(model); }

  /// Unified-interface entry; see DabsSolver::solve(const SolveRequest&).
  SolveReport solve(const SolveRequest& request) override {
    SolveReport report = inner_.solve(request);
    report.solver = name();
    return report;
  }

  std::string_view name() const noexcept override { return "abs"; }

 private:
  DabsSolver inner_;
};

}  // namespace dabs
