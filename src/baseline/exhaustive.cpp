#include "baseline/exhaustive.hpp"

#include <bit>
#include <thread>
#include <vector>

#include "qubo/search_state.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace dabs {

BaselineResult ExhaustiveSolver::solve_block(
    const QuboModel& model, std::uint64_t prefix, std::size_t prefix_bits,
    const StopContext* ctx, std::atomic<std::uint64_t>* work_done) const {
  const std::size_t n = model.size();
  const std::size_t suffix_bits = n - prefix_bits;

  // Start vector: the prefix occupies the *top* bits [suffix_bits, n).
  BitVector start(n);
  for (std::size_t b = 0; b < prefix_bits; ++b) {
    start.set(suffix_bits + b, (prefix >> b) & 1);
  }
  SearchState state(model);
  state.reset_to(start);

  BitVector best = state.solution();
  Energy best_e = state.energy();
  const std::uint64_t total = std::uint64_t{1} << suffix_bits;
  const std::uint64_t work_budget = ctx ? ctx->condition().max_batches : 0;
  for (std::uint64_t s = 1; s < total; ++s) {
    if (ctx && (s & 8191) == 0) {
      if (ctx->expired()) break;
      if (work_budget != 0 &&
          work_done->fetch_add(8192, std::memory_order_relaxed) + 8192 >=
              work_budget) {
        break;
      }
    }
    state.flip(static_cast<VarIndex>(std::countr_zero(s)));
    if (state.energy() < best_e) {
      best_e = state.energy();
      best = state.solution();
    }
  }
  return {best, best_e, state.flip_count(), 0.0};
}

BaselineResult ExhaustiveSolver::run(const QuboModel& model,
                                     const StopContext* ctx) const {
  const std::size_t n = model.size();
  DABS_CHECK(n <= max_bits_, "model too large for exhaustive enumeration");
  Stopwatch clock;

  // Round the worker count down to a power of two, capped so every worker
  // has at least one suffix bit to enumerate.
  std::size_t prefix_bits = 0;
  while ((std::size_t{2} << prefix_bits) <= threads_ &&
         prefix_bits + 1 < n) {
    ++prefix_bits;
  }
  if (threads_ == 1 || n < 2) prefix_bits = 0;

  // Shared enumeration-step counter so a StopCondition work budget bounds
  // the run across all workers (checked once per 8192-step stride).
  std::atomic<std::uint64_t> work_done{0};

  if (prefix_bits == 0) {
    BaselineResult r = solve_block(model, 0, 0, ctx, &work_done);
    r.elapsed_seconds = clock.elapsed_seconds();
    return r;
  }

  const std::size_t workers = std::size_t{1} << prefix_bits;
  std::vector<BaselineResult> results(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      results[w] = solve_block(model, w, prefix_bits, ctx, &work_done);
    });
  }
  for (auto& t : pool) t.join();

  BaselineResult out = results[0];
  for (std::size_t w = 1; w < workers; ++w) {
    out.flips += results[w].flips;
    if (results[w].best_energy < out.best_energy) {
      out.best_energy = results[w].best_energy;
      out.best_solution = results[w].best_solution;
    }
  }
  out.elapsed_seconds = clock.elapsed_seconds();
  return out;
}

BaselineResult ExhaustiveSolver::solve(const QuboModel& model) const {
  return run(model, nullptr);
}

SolveReport ExhaustiveSolver::solve(const SolveRequest& request) {
  const QuboModel& model = request_model(request);
  StopContext ctx = StopContext::for_request(request);
  BaselineResult r = run(model, &ctx);
  ctx.add_work(r.flips);
  ctx.note_best(r.best_energy);
  (void)ctx.should_stop();  // latch cancellation for the report
  return make_report(name(), std::move(r), ctx);
}

}  // namespace dabs
