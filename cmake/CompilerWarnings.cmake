# Defines the dabs_warnings interface target carrying the project's warning
# flags.  Every compiled target links it PRIVATE so the flags never leak to
# consumers.  DABS_WARNINGS_AS_ERRORS upgrades warnings to errors.

add_library(dabs_warnings INTERFACE)

if(MSVC)
  target_compile_options(dabs_warnings INTERFACE /W4)
  if(DABS_WARNINGS_AS_ERRORS)
    target_compile_options(dabs_warnings INTERFACE /WX)
  endif()
else()
  target_compile_options(dabs_warnings INTERFACE -Wall -Wextra)
  if(DABS_WARNINGS_AS_ERRORS)
    target_compile_options(dabs_warnings INTERFACE -Werror)
  endif()
endif()
